#include "engine/planner.h"

#include <algorithm>
#include <limits>

#include "cost/feedback.h"
#include "engine/plan_verifier.h"

namespace rdfopt {

namespace {

/// Distinct variables of `atom` in first-occurrence s,p,o order — the
/// column order ScanAtom produces.
std::vector<VarId> AtomColumns(const TriplePattern& atom) {
  std::vector<VarId> raw;
  atom.AppendVariables(&raw);
  std::vector<VarId> out;
  for (VarId v : raw) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

bool IsConstantAtom(const TriplePattern& atom) {
  return !atom.s.is_var() && !atom.p.is_var() && !atom.o.is_var();
}

bool Contains(const std::vector<VarId>& cols, VarId v) {
  return std::find(cols.begin(), cols.end(), v) != cols.end();
}

/// Join output columns: left columns, then right-only columns (the order
/// HashJoin and IndexJoinAtom produce).
std::vector<VarId> JoinColumns(const std::vector<VarId>& left,
                               const std::vector<VarId>& right) {
  std::vector<VarId> out = left;
  for (VarId v : right) {
    if (!Contains(out, v)) out.push_back(v);
  }
  return out;
}

std::unique_ptr<PlanNode> MakeNode(PlanNodeKind kind) {
  return std::make_unique<PlanNode>(kind);
}

/// How many disjuncts of an over-limit union are still planned, so EXPLAIN
/// can show sample terms of a plan that will never execute.
constexpr size_t kOverLimitSampleTerms = 3;

}  // namespace

namespace {

std::array<uint64_t, 6> KeyOfAtom(const TriplePattern& atom) {
  auto enc = [](const PatternTerm& t, uint64_t* k) {
    k[0] = t.is_var() ? 1u : 2u;
    k[1] = t.is_var() ? static_cast<uint64_t>(t.var())
                      : static_cast<uint64_t>(t.value());
  };
  std::array<uint64_t, 6> key{};
  enc(atom.s, &key[0]);
  enc(atom.p, &key[2]);
  enc(atom.o, &key[4]);
  return key;
}

/// Collects every non-guard atom scan of a disjunct chain (constant-atom
/// guards are point lookups, not worth sharing).
void CollectScanLeaves(const PlanNode* node,
                       std::vector<const PlanNode*>* out) {
  if (node == nullptr) return;
  if (node->kind == PlanNodeKind::kAtomScan && !IsConstantAtom(node->atom)) {
    out->push_back(node);
  }
  for (const auto& child : node->children) {
    CollectScanLeaves(child.get(), out);
  }
}

}  // namespace

std::vector<size_t> GreedyAtomOrder(const std::vector<TriplePattern>& atoms,
                                    const std::vector<double>& cards) {
  const size_t n = atoms.size();
  std::vector<bool> used(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  while (order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = order.empty();
      for (size_t j : order) {
        connected = connected || atoms[i].SharesVariableWith(atoms[j]);
      }
      // Prefer connected atoms; among equals, the smallest scan.
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           cards[i] < cards[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<size_t>(best));
  }
  return order;
}

std::string UnionLimitMessage(size_t union_terms,
                              const EngineProfile& profile) {
  return "UCQ has " + std::to_string(union_terms) +
         " union terms, over the per-query plan limit of " +
         std::to_string(profile.max_union_terms) + " on " + profile.name;
}

std::unique_ptr<PlanNode> Planner::BuildCqChain(
    const ConjunctiveQuery& cq, const SharedScanMap* shared_scans) const {
  const CostConstants& k = profile_->cost;

  // A scan of an atom factored into a shared subplan becomes a reference to
  // it: est_cost 0 here (the shared subplan is priced once at the union),
  // est_rows unchanged (the reference produces the same relation).
  auto scan_or_ref = [&](const TriplePattern& atom, double est_rows,
                         bool driving) -> std::unique_ptr<PlanNode> {
    if (shared_scans != nullptr) {
      auto it = shared_scans->find(KeyOfAtom(atom));
      if (it != shared_scans->end()) {
        auto ref = MakeNode(PlanNodeKind::kSharedRef);
        ref->atom = atom;
        ref->shared_index = it->second;
        ref->out_columns = AtomColumns(atom);
        ref->est_rows = est_rows;
        return ref;
      }
    }
    auto scan = MakeNode(PlanNodeKind::kAtomScan);
    scan->atom = atom;
    scan->driving_scan = driving;
    scan->out_columns = AtomColumns(atom);
    scan->est_rows = est_rows;
    scan->est_cost = k.c_t * est_rows;
    return scan;
  };

  // All-constant atoms act as boolean existence guards, checked before any
  // scan happens: a left-deep chain short-circuits the whole disjunct when
  // one of them fails.
  std::unique_ptr<PlanNode> chain;
  double guard_selectivity = 1.0;
  std::vector<TriplePattern> body;
  for (const TriplePattern& atom : cq.atoms) {
    if (!IsConstantAtom(atom)) {
      body.push_back(atom);
      continue;
    }
    auto guard = MakeNode(PlanNodeKind::kAtomScan);
    guard->atom = atom;
    guard->est_rows = std::min(1.0, estimator_->EstimateAtom(atom));
    guard->est_cost = k.c_t * guard->est_rows;
    guard_selectivity *= guard->est_rows;
    if (chain == nullptr) {
      chain = std::move(guard);
    } else {
      auto both = MakeNode(PlanNodeKind::kHashJoin);
      both->est_rows = guard_selectivity;
      both->est_cost = chain->est_cost + guard->est_cost;
      both->children.push_back(std::move(chain));
      both->children.push_back(std::move(guard));
      chain = std::move(both);
    }
  }
  if (body.empty()) return chain;  // Null for the atom-less (true) CQ.

  std::vector<double> cards(body.size());
  for (size_t i = 0; i < body.size(); ++i) {
    cards[i] = estimator_->EstimateAtom(body[i]);
  }
  const std::vector<size_t> order = GreedyAtomOrder(body, cards);

  // Driving scan: the pipelined base of the chain; charged per-tuple
  // executor overhead by itself (scans feeding hash joins are charged at
  // the join instead).
  const TriplePattern& first = body[order[0]];
  std::unique_ptr<PlanNode> scan =
      scan_or_ref(first, cards[order[0]], /*driving=*/true);
  if (chain == nullptr) {
    chain = std::move(scan);
  } else {
    // Guard pass-through: boolean AND of the constant filters with the
    // driving scan; the executor forwards the scan unchanged when the
    // guards hold.
    auto guarded = MakeNode(PlanNodeKind::kHashJoin);
    guarded->out_columns = scan->out_columns;
    guarded->est_rows = guard_selectivity * scan->est_rows;
    guarded->est_cost = chain->est_cost + scan->est_cost;
    guarded->children.push_back(std::move(chain));
    guarded->children.push_back(std::move(scan));
    chain = std::move(guarded);
  }

  ConjunctiveQuery prefix;
  prefix.atoms.push_back(first);
  double inter = cards[order[0]];
  for (size_t step = 1; step < order.size(); ++step) {
    const TriplePattern& atom = body[order[step]];
    const double scanned = cards[order[step]];
    prefix.atoms.push_back(atom);
    const double out = estimator_->EstimateCQ(prefix);
    const std::vector<VarId> atom_cols = AtomColumns(atom);
    bool binds_position = false;
    for (VarId v : atom_cols) {
      binds_position = binds_position || Contains(chain->out_columns, v);
    }
    std::vector<VarId> out_columns = JoinColumns(chain->out_columns, atom_cols);

    std::unique_ptr<PlanNode> node;
    if (binds_position && inter * 8.0 < scanned) {
      node = MakeNode(PlanNodeKind::kIndexJoinAtom);
      node->atom = atom;
      node->est_cost = chain->est_cost + (k.c_t + k.c_j) * inter + k.c_j * out;
      node->children.push_back(std::move(chain));
    } else {
      std::unique_ptr<PlanNode> probe =
          scan_or_ref(atom, scanned, /*driving=*/false);
      node = MakeNode(PlanNodeKind::kHashJoin);
      node->est_cost =
          chain->est_cost + probe->est_cost + k.c_j * (inter + scanned);
      node->children.push_back(std::move(chain));
      node->children.push_back(std::move(probe));
    }
    node->out_columns = std::move(out_columns);
    node->est_rows = guard_selectivity * out;
    chain = std::move(node);
    inter = out;
  }
  return chain;
}

std::unique_ptr<PlanNode> Planner::BuildRangeChain(
    const ConjunctiveQuery& cq, const CollapsedRange& range) const {
  const CostConstants& k = profile_->cost;
  const TripleStore* store = estimator_->store();
  const TriplePattern& masked = cq.atoms[range.atom_index];

  auto scan = MakeNode(PlanNodeKind::kScanRange);
  scan->atom = masked;
  scan->driving_scan = true;
  scan->range_lo = range.lo;
  scan->range_hi = range.hi;
  scan->range_class_space = range.class_space;
  scan->range_terms = range.members.size();
  scan->out_columns = AtomColumns(masked);
  const double range_rows = static_cast<double>(
      range.class_space ? store->CountClassHidRange(range.lo, range.hi)
                        : store->CountPropertyHidRange(range.lo, range.hi));
  scan->est_rows = range_rows;
  scan->est_cost = k.c_r * range_rows;

  // Suffix estimates come from the representative disjunct's prefixes,
  // scaled by how much wider the interval is than the representative's own
  // scan: the group's branches are identical up to the masked constant, so
  // the representative's join selectivities stand in for all of them.
  const double scale =
      range_rows / std::max(1.0, estimator_->EstimateAtom(masked));

  // Constant atoms act as boolean existence guards, exactly as in
  // BuildCqChain; the masked atom never is one here (it has the range's
  // hid site, but guard handling is kept for the representative's other
  // all-constant atoms).
  std::unique_ptr<PlanNode> chain;
  double guard_selectivity = 1.0;
  std::vector<TriplePattern> body;
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    if (a == range.atom_index) continue;
    const TriplePattern& atom = cq.atoms[a];
    if (!IsConstantAtom(atom)) {
      body.push_back(atom);
      continue;
    }
    auto guard = MakeNode(PlanNodeKind::kAtomScan);
    guard->atom = atom;
    guard->est_rows = std::min(1.0, estimator_->EstimateAtom(atom));
    guard->est_cost = k.c_t * guard->est_rows;
    guard_selectivity *= guard->est_rows;
    if (chain == nullptr) {
      chain = std::move(guard);
    } else {
      auto both = MakeNode(PlanNodeKind::kHashJoin);
      both->est_rows = guard_selectivity;
      both->est_cost = chain->est_cost + guard->est_cost;
      both->children.push_back(std::move(chain));
      both->children.push_back(std::move(guard));
      chain = std::move(both);
    }
  }

  // The range scan is pinned as the driving scan: the shadow index emits
  // (hid, subject, ...) order across the interval, which no per-subject
  // probe order survives, so it anchors the chain and everything else joins
  // onto it.
  if (chain == nullptr) {
    chain = std::move(scan);
  } else {
    auto guarded = MakeNode(PlanNodeKind::kHashJoin);
    guarded->out_columns = scan->out_columns;
    guarded->est_rows = guard_selectivity * scan->est_rows;
    guarded->est_cost = chain->est_cost + scan->est_cost;
    guarded->children.push_back(std::move(chain));
    guarded->children.push_back(std::move(scan));
    chain = std::move(guarded);
  }

  std::vector<double> cards(body.size());
  for (size_t i = 0; i < body.size(); ++i) {
    cards[i] = estimator_->EstimateAtom(body[i]);
  }
  ConjunctiveQuery prefix;
  prefix.atoms.push_back(masked);
  double inter = range_rows;
  std::vector<bool> used(body.size(), false);
  for (size_t step = 0; step < body.size(); ++step) {
    // Greedy pick over the remaining atoms, seeded by the pinned range scan:
    // prefer atoms sharing a variable with the chain, among equals the
    // smallest scan (same rule as GreedyAtomOrder).
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (VarId v : AtomColumns(body[i])) {
        connected = connected || Contains(chain->out_columns, v);
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           cards[i] < cards[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[static_cast<size_t>(best)] = true;
    const TriplePattern& atom = body[static_cast<size_t>(best)];
    const double scanned = cards[static_cast<size_t>(best)];
    prefix.atoms.push_back(atom);
    const double out = estimator_->EstimateCQ(prefix) * scale;
    const std::vector<VarId> atom_cols = AtomColumns(atom);
    bool binds_position = false;
    for (VarId v : atom_cols) {
      binds_position = binds_position || Contains(chain->out_columns, v);
    }
    std::vector<VarId> out_columns = JoinColumns(chain->out_columns, atom_cols);

    std::unique_ptr<PlanNode> node;
    if (binds_position && inter * 8.0 < scanned) {
      node = MakeNode(PlanNodeKind::kIndexJoinAtom);
      node->atom = atom;
      node->est_cost = chain->est_cost + (k.c_t + k.c_j) * inter + k.c_j * out;
      node->children.push_back(std::move(chain));
    } else {
      auto probe = MakeNode(PlanNodeKind::kAtomScan);
      probe->atom = atom;
      probe->out_columns = atom_cols;
      probe->est_rows = scanned;
      probe->est_cost = k.c_t * scanned;
      node = MakeNode(PlanNodeKind::kHashJoin);
      node->est_cost =
          chain->est_cost + probe->est_cost + k.c_j * (inter + scanned);
      node->children.push_back(std::move(chain));
      node->children.push_back(std::move(probe));
    }
    node->out_columns = std::move(out_columns);
    node->est_rows = guard_selectivity * out;
    chain = std::move(node);
    inter = out;
  }
  return chain;
}

std::unique_ptr<PlanNode> Planner::BuildCollapsedComponent(
    const UnionQuery& ucq, const RangeCollapsePlan& rc,
    int component_index) const {
  const CostConstants& k = profile_->cost;
  auto u = MakeNode(PlanNodeKind::kUnionAll);
  u->head = ucq.head;
  u->out_columns = ucq.head;
  u->pre_collapse_terms = ucq.disjuncts.size();
  const size_t post = rc.post_terms();
  u->union_terms = post;
  u->over_limit = post > profile_->max_union_terms;
  u->parallel_safe = !u->over_limit;
  if (profile_->worker_threads > 1 && !u->over_limit) {
    const size_t tasks = 4 * profile_->worker_threads;
    u->morsel_size = std::max<size_t>(1, post / tasks);
  }

  // Branch order: ranges and residual disjuncts interleaved by smallest
  // source disjunct index, so the collapsed union tracks the original
  // disjunct order deterministically.
  struct Branch {
    size_t first_disjunct;
    const CollapsedRange* range;  // Null for a residual branch.
    size_t residual_disjunct;
  };
  std::vector<Branch> branches;
  branches.reserve(post);
  for (const CollapsedRange& r : rc.ranges) {
    branches.push_back(Branch{r.members.front(), &r, 0});
  }
  for (size_t d : rc.residual) {
    branches.push_back(Branch{d, nullptr, d});
  }
  std::sort(branches.begin(), branches.end(),
            [](const Branch& a, const Branch& b) {
              return a.first_disjunct < b.first_disjunct;
            });

  const size_t planned =
      u->over_limit ? std::min(branches.size(), kOverLimitSampleTerms)
                    : branches.size();
  // No union-subplan factoring across collapsed branches: the ranged scans
  // are already the shared work, and the residual tail is small by
  // construction.
  double est_sum = 0.0;
  double cost = k.c_union_term * static_cast<double>(post);
  for (size_t b = 0; b < planned; ++b) {
    const Branch& branch = branches[b];
    const size_t source =
        branch.range != nullptr ? branch.range->rep : branch.residual_disjunct;
    std::unique_ptr<PlanNode> chain =
        branch.range != nullptr
            ? BuildRangeChain(ucq.disjuncts[branch.range->rep], *branch.range)
            : BuildCqChain(ucq.disjuncts[branch.residual_disjunct]);
    if (chain == nullptr) {
      chain = MakeNode(PlanNodeKind::kProject);
      chain->est_rows = 1.0;
    }
    est_sum += chain->est_rows;
    cost += chain->est_cost;
    // The representative disjunct carries the branch's projection: the
    // collapse signature pins head variables and head bindings literally
    // across the group, so it is exact for every member.
    u->disjuncts.push_back(ucq.disjuncts[source]);
    u->children.push_back(std::move(chain));
  }
  u->est_rows = est_sum;
  u->est_cost = cost;

  auto dedup = MakeNode(PlanNodeKind::kDedup);
  dedup->component = component_index;
  dedup->out_columns = ucq.head;
  dedup->est_rows = est_sum;
  dedup->est_cost = cost + k.c_l * est_sum;
  dedup->children.push_back(std::move(u));
  return dedup;
}

std::unique_ptr<PlanNode> Planner::FinishComponent(
    std::unique_ptr<PlanNode> dedup, const UnionQuery& ucq,
    std::vector<std::unique_ptr<PlanNode>>* shared_out,
    size_t shared_base) const {
  if (views_ == nullptr) return dedup;
  PlanNode* u = dedup->children[0].get();
  if (u->over_limit) return dedup;  // Never executes; nothing to materialize.
  std::string signature = ViewSignature(ucq);
  views_->NoteComponent(signature, ucq, u->est_cost, u->union_terms);
  std::shared_ptr<const Relation> rows = views_->Lookup(signature);
  if (rows == nullptr) {
    // No materialized rows yet: stamp the component root so the executor
    // can offer its freshly deduplicated result for admission without
    // recomputing the signature.
    dedup->view_signature = std::move(signature);
    return dedup;
  }
  // Catalog hit: replace the union subtree with a view read. The view node
  // inherits the replaced subtree's estimates verbatim (decision parity —
  // see plan.h): every decision downstream of est_rows/est_cost is made
  // from the same numbers as a views-off planning, so only execution
  // changes. Shared subplans factored out of the replaced chains would be
  // orphaned; truncate them away (this component appended them last).
  auto view = MakeNode(PlanNodeKind::kViewScan);
  view->view_signature = std::move(signature);
  view->view_rows = std::move(rows);
  view->head = u->head;
  view->out_columns = u->out_columns;
  view->union_terms = u->union_terms;
  view->pre_collapse_terms = u->pre_collapse_terms;
  view->est_rows = u->est_rows;
  view->est_cost = u->est_cost;
  dedup->children[0] = std::move(view);
  if (shared_out != nullptr && shared_out->size() > shared_base) {
    shared_out->resize(shared_base);
  }
  return dedup;
}

std::unique_ptr<PlanNode> Planner::BuildComponent(
    const UnionQuery& ucq, int component_index,
    std::vector<std::unique_ptr<PlanNode>>* shared_out) const {
  const CostConstants& k = profile_->cost;
  const size_t shared_base = shared_out != nullptr ? shared_out->size() : 0;

  // Hierarchy-range collapse (DESIGN.md §12): with the feature on and an
  // encoding attached to the store, disjunct groups identical up to one
  // hierarchy constant whose hids form a consecutive run become single
  // kScanRange branches. The safety valve keeps a range only when the
  // interval scan prices below its member scans plus the union-term
  // overhead it saves — with calibrated profiles (c_r ≈ c_t) that is
  // essentially always, but a profile modelling an expensive range kernel
  // can veto the rewrite per range.
  if (profile_->hierarchy_ranges && ucq.disjuncts.size() >= 2) {
    const HierarchyEncoding* encoding = estimator_->store()->hierarchy();
    if (encoding != nullptr) {
      RangeCollapsePlan rc = AnalyzeRangeCollapse(ucq, *encoding);
      if (!rc.ranges.empty()) {
        const TripleStore* store = estimator_->store();
        std::vector<CollapsedRange> kept;
        kept.reserve(rc.ranges.size());
        for (CollapsedRange& r : rc.ranges) {
          const double rows = static_cast<double>(
              r.class_space ? store->CountClassHidRange(r.lo, r.hi)
                            : store->CountPropertyHidRange(r.lo, r.hi));
          const double union_cost =
              k.c_t * rows +
              k.c_union_term * static_cast<double>(r.members.size() - 1);
          if (k.c_r * rows < union_cost) {
            kept.push_back(std::move(r));
          } else {
            rc.residual.insert(rc.residual.end(), r.members.begin(),
                               r.members.end());
          }
        }
        const bool demoted = kept.size() != rc.ranges.size();
        rc.ranges = std::move(kept);
        if (demoted) {
          std::sort(rc.residual.begin(), rc.residual.end());
        }
      }
      if (!rc.ranges.empty()) {
        return FinishComponent(BuildCollapsedComponent(ucq, rc, component_index),
                               ucq, shared_out, shared_base);
      }
    }
  }

  auto u = MakeNode(PlanNodeKind::kUnionAll);
  u->head = ucq.head;
  u->out_columns = ucq.head;
  u->pre_collapse_terms = ucq.disjuncts.size();
  u->union_terms = ucq.disjuncts.size();
  u->over_limit = ucq.disjuncts.size() > profile_->max_union_terms;
  // Union disjuncts are independent conjunctive queries by construction, so
  // every executable union is safe to fan out. Morsels: aim for ~4 tasks per
  // thread so slow disjuncts (selective scans vs. full scans) load-balance.
  u->parallel_safe = !u->over_limit;
  if (profile_->worker_threads > 1 && !u->over_limit) {
    const size_t tasks = 4 * profile_->worker_threads;
    u->morsel_size = std::max<size_t>(1, ucq.disjuncts.size() / tasks);
  }

  // An over-limit union can never execute; plan only a few sample disjuncts
  // so EXPLAIN can still render the infeasible plan.
  const size_t planned =
      u->over_limit ? std::min(ucq.disjuncts.size(), kOverLimitSampleTerms)
                    : ucq.disjuncts.size();
  std::vector<std::unique_ptr<PlanNode>> chains;
  chains.reserve(planned);
  for (size_t d = 0; d < planned; ++d) {
    chains.push_back(BuildCqChain(ucq.disjuncts[d]));
  }

  // Union-subplan factoring (DESIGN.md §11): an atom scanned by two or more
  // disjunct chains becomes an execute-once shared subplan; each chain
  // rebuilds with a kSharedRef leaf in its place. Operator choices are
  // estimate-driven and identical across the rebuild, so only scan leaves
  // change. Off for over-limit unions (they never execute) and for profiles
  // that model engines re-evaluating every branch in isolation.
  double shared_cost = 0.0;
  if (profile_->share_union_subplans && !u->over_limit &&
      shared_out != nullptr && planned > 1) {
    std::map<SharedAtomKey, std::pair<size_t, const PlanNode*>> counts;
    std::vector<const PlanNode*> leaves;
    for (const auto& chain : chains) {
      leaves.clear();
      CollectScanLeaves(chain.get(), &leaves);
      // Count each atom once per chain (a self-join shares within the
      // chain too, but sharing needs at least two distinct consumers).
      std::map<SharedAtomKey, const PlanNode*> in_chain;
      for (const PlanNode* leaf : leaves) {
        in_chain.emplace(KeyOfAtom(leaf->atom), leaf);
      }
      for (const auto& [key, leaf] : in_chain) {
        auto [it, inserted] = counts.emplace(key, std::make_pair(0u, leaf));
        ++it->second.first;
      }
    }
    SharedScanMap shared_map;
    for (const auto& [key, entry] : counts) {
      if (entry.first < 2) continue;
      const PlanNode* exemplar = entry.second;
      auto shared = MakeNode(PlanNodeKind::kAtomScan);
      shared->atom = exemplar->atom;
      shared->driving_scan = true;  // Charged per-tuple once, at execution.
      shared->out_columns = exemplar->out_columns;
      shared->est_rows = exemplar->est_rows;
      shared->est_cost = k.c_t * exemplar->est_rows;
      shared->shared_index = static_cast<int>(shared_out->size());
      shared_map.emplace(key, shared->shared_index);
      shared_cost += shared->est_cost;
      shared_out->push_back(std::move(shared));
    }
    if (!shared_map.empty()) {
      for (size_t d = 0; d < planned; ++d) {
        chains[d] = BuildCqChain(ucq.disjuncts[d], &shared_map);
      }
    }
  }

  double est_sum = 0.0;
  double cost = shared_cost +
                k.c_union_term * static_cast<double>(ucq.disjuncts.size());
  for (size_t d = 0; d < planned; ++d) {
    std::unique_ptr<PlanNode> chain = std::move(chains[d]);
    if (chain == nullptr) {
      // Atom-less disjunct: a single always-true row.
      chain = MakeNode(PlanNodeKind::kProject);
      chain->est_rows = 1.0;
    }
    est_sum += chain->est_rows;
    cost += chain->est_cost;
    u->disjuncts.push_back(ucq.disjuncts[d]);
    u->children.push_back(std::move(chain));
  }
  u->est_rows = est_sum;
  u->est_cost = cost;

  auto dedup = MakeNode(PlanNodeKind::kDedup);
  dedup->component = component_index;
  dedup->out_columns = ucq.head;
  dedup->est_rows = est_sum;
  dedup->est_cost = cost + k.c_l * est_sum;
  dedup->children.push_back(std::move(u));
  return FinishComponent(std::move(dedup), ucq, shared_out, shared_base);
}

Planner::ComponentCombination Planner::CombineComponents(
    const std::vector<std::pair<double, std::vector<VarId>>>& components)
    const {
  const CostConstants& k = profile_->cost;
  ComponentCombination comb;
  const size_t n = components.size();
  if (n == 0) return comb;

  // The largest estimated result is pipelined; all others are materialized
  // (paper §4.1(v)). First-max tie-break, as the evaluator always had.
  for (size_t i = 1; i < n; ++i) {
    if (components[i].first > components[comb.pipelined].first) {
      comb.pipelined = i;
    }
  }

  // Greedy join order: smallest estimate first, then the smallest component
  // sharing a column with the accumulated result.
  std::vector<bool> used(n, false);
  std::vector<VarId> acc_cols;
  while (comb.order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = comb.order.empty();
      for (VarId v : components[i].second) {
        connected = connected || Contains(acc_cols, v);
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           components[i].first <
               components[static_cast<size_t>(best)].first)) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[static_cast<size_t>(best)] = true;
    comb.order.push_back(static_cast<size_t>(best));
    acc_cols = JoinColumns(acc_cols,
                           components[static_cast<size_t>(best)].second);
  }

  if (n > 1) {
    double join_inputs = 0.0;
    for (size_t i = 0; i < n; ++i) {
      join_inputs += components[i].first;
      if (i != comb.pipelined) {
        comb.combine_cost += k.c_m * components[i].first;
      }
    }
    comb.combine_cost += k.c_j * join_inputs;
  }
  comb.est_rows = estimator_->EstimateJoin(components);
  return comb;
}

void Planner::Finalize(PhysicalPlan* plan) const {
  plan->profile_name = profile_->name;
  plan->union_term_limit = profile_->max_union_terms;
  plan->vector_width = std::max<size_t>(1, profile_->vector_width);
  int next_id = 0;
  // Preorder ids (non-const walk; ForEachNode is const-only). Shared
  // subplans come first: they execute first and EXPLAIN prints them as the
  // plan preamble.
  struct Assign {
    int* next;
    void operator()(PlanNode* node) {
      if (node == nullptr) return;
      node->id = (*next)++;
      for (auto& child : node->children) (*this)(child.get());
    }
  };
  for (auto& shared : plan->shared_subplans) {
    Assign{&next_id}(shared.get());
  }
  Assign{&next_id}(plan->root.get());
  plan->num_nodes = next_id;
}

PhysicalPlan Planner::PlanCQ(const ConjunctiveQuery& cq) const {
  const CostConstants& k = profile_->cost;
  PhysicalPlan plan;
  plan.shape = PlanShape::kCq;
  plan.profile_name = profile_->name;
  plan.num_components = 1;

  std::unique_ptr<PlanNode> chain = BuildCqChain(cq);
  auto project = MakeNode(PlanNodeKind::kProject);
  project->head = cq.head;
  project->bindings = cq.head_bindings;
  project->out_columns = cq.head;
  if (chain != nullptr) {
    project->est_rows = chain->est_rows;
    project->est_cost = chain->est_cost;
    project->children.push_back(std::move(chain));
  } else {
    project->est_rows = 1.0;  // The atom-less CQ has one (true) row.
  }

  auto dedup = MakeNode(PlanNodeKind::kDedup);
  dedup->out_columns = cq.head;
  dedup->est_rows = project->est_rows;
  dedup->est_cost = project->est_cost + k.c_l * project->est_rows;
  dedup->children.push_back(std::move(project));
  plan.root = std::move(dedup);
  Finalize(&plan);
  DebugCheckPlan(plan, estimator_->store(), "planner (CQ)");
  return plan;
}

PhysicalPlan Planner::PlanUCQ(const UnionQuery& ucq) const {
  PhysicalPlan plan;
  plan.shape = PlanShape::kUcq;
  plan.profile_name = profile_->name;
  plan.num_components = 1;
  plan.root = BuildComponent(ucq, /*component_index=*/0,
                             &plan.shared_subplans);
  // Term count and feasibility are read off the built union (the dedup
  // root's child): with hierarchy-range collapse they are post-collapse
  // values — a reformulation whose collapsed form fits the plan limit is
  // feasible even when its raw disjunct count is not.
  const PlanNode* u = plan.root->children[0].get();
  plan.union_terms = u->union_terms;
  if (u->over_limit) {
    plan.feasibility = Status::QueryTooComplex(
        UnionLimitMessage(u->union_terms, *profile_));
  }
  Finalize(&plan);
  DebugCheckPlan(plan, estimator_->store(), "planner (UCQ)");
  return plan;
}

PhysicalPlan Planner::PlanJUCQ(const JoinOfUnions& jucq) const {
  const CostConstants& k = profile_->cost;
  PhysicalPlan plan;
  plan.shape = PlanShape::kJucq;
  plan.profile_name = profile_->name;
  plan.num_components = jucq.components.size();

  std::vector<std::unique_ptr<PlanNode>> roots;
  std::vector<std::pair<double, std::vector<VarId>>> inputs;
  roots.reserve(jucq.components.size());
  inputs.reserve(jucq.components.size());
  for (size_t c = 0; c < jucq.components.size(); ++c) {
    const UnionQuery& component = jucq.components[c];
    std::unique_ptr<PlanNode> root = BuildComponent(
        component, static_cast<int>(c), &plan.shared_subplans);
    // Post-collapse term count and feasibility, read off the built union
    // (see PlanUCQ).
    const PlanNode* u = root->children[0].get();
    plan.union_terms += u->union_terms;
    if (u->over_limit && plan.feasibility.ok()) {
      plan.feasibility = Status::QueryTooComplex(
          UnionLimitMessage(u->union_terms, *profile_));
    }
    inputs.emplace_back(root->est_rows, component.head);
    roots.push_back(std::move(root));
  }

  std::unique_ptr<PlanNode> tree;
  ComponentCombination comb = CombineComponents(inputs);
  if (roots.size() == 1) {
    tree = std::move(roots[0]);
  } else if (!roots.empty()) {
    // All-but-the-largest component results are materialized.
    for (size_t i = 0; i < roots.size(); ++i) {
      if (i == comb.pipelined) continue;
      auto barrier = MakeNode(PlanNodeKind::kMaterializeBarrier);
      barrier->out_columns = roots[i]->out_columns;
      barrier->est_rows = roots[i]->est_rows;
      barrier->est_cost = roots[i]->est_cost + k.c_m * roots[i]->est_rows;
      barrier->children.push_back(std::move(roots[i]));
      roots[i] = std::move(barrier);
    }
    // Left-deep hash-join chain in the greedy component order.
    std::vector<std::pair<double, std::vector<VarId>>> joined;
    tree = std::move(roots[comb.order[0]]);
    joined.push_back(inputs[comb.order[0]]);
    for (size_t step = 1; step < comb.order.size(); ++step) {
      const size_t next = comb.order[step];
      auto join = MakeNode(PlanNodeKind::kHashJoin);
      join->component_join = true;
      join->out_columns =
          JoinColumns(tree->out_columns, roots[next]->out_columns);
      joined.push_back(inputs[next]);
      join->est_rows = estimator_->EstimateJoin(joined);
      // Each component's rows are fed into the join pipeline once; the
      // first join also accounts for its left (first) component.
      join->est_cost = tree->est_cost + roots[next]->est_cost +
                       k.c_j * inputs[next].first +
                       (step == 1 ? k.c_j * inputs[comb.order[0]].first : 0.0);
      join->children.push_back(std::move(tree));
      join->children.push_back(std::move(roots[next]));
      tree = std::move(join);
    }
  }

  auto project = MakeNode(PlanNodeKind::kProject);
  project->head = jucq.head;
  project->out_columns = jucq.head;
  if (tree != nullptr) {
    project->est_rows = tree->est_rows;
    project->est_cost = tree->est_cost;
    project->children.push_back(std::move(tree));
  }

  auto dedup = MakeNode(PlanNodeKind::kDedup);
  dedup->out_columns = jucq.head;
  dedup->est_rows = comb.est_rows;
  // c_db is the per-query engine round-trip constant, charged once at the
  // plan root (this keeps ExplainCost the sum it always was).
  dedup->est_cost = project->est_cost + k.c_l * comb.est_rows + k.c_db;
  dedup->children.push_back(std::move(project));
  plan.root = std::move(dedup);
  Finalize(&plan);
  DebugCheckPlan(plan, estimator_->store(), "planner (JUCQ)");
  return plan;
}

}  // namespace rdfopt
