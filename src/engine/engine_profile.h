#ifndef RDFOPT_ENGINE_ENGINE_PROFILE_H_
#define RDFOPT_ENGINE_ENGINE_PROFILE_H_

#include <cstddef>
#include <string>

#include "cost/cost_constants.h"

namespace rdfopt {

/// Behavioural profile of the embedded evaluation engine.
///
/// The paper runs on three external RDBMSs (PostgreSQL, DB2, MySQL) that
/// "differ significantly in their ability to handle UCQ and SCQ
/// reformulations". We reproduce those differences with profiles of one
/// embedded engine (see DESIGN.md §3): each profile sets the hard resource
/// limits that produce the paper's failure modes and carries its own
/// calibrated cost constants, which is exactly what makes the cost-based
/// cover choice engine-specific (paper §5: "we calibrate separately for each
/// system").
struct EngineProfile {
  std::string name;

  /// Hard cap on the number of union terms (disjuncts) in any UCQ shipped to
  /// the engine. Exceeding it fails with kQueryTooComplex — the analogue of
  /// DB2's "stack depth limit exceeded" on q2's 318,096-term reformulation.
  size_t max_union_terms = 100000;

  /// Memory budget, in cells (column values), across all materialized
  /// intermediates of one query. Exceeding it fails with
  /// kResourceExhausted — the analogue of the paper's I/O exceptions on
  /// failed intermediate materialization.
  size_t max_materialized_cells = 400u * 1000 * 1000;

  /// Per-tuple executor overhead in microseconds, physically consumed on
  /// every row flowing through a join or union operator; models the
  /// interpretation cost real engines pay per tuple (expression evaluation,
  /// tuple (de)forming), which is what makes plans over huge intermediate
  /// results slow regardless of algorithmic complexity.
  double tuple_us_per_row = 0.0;

  /// Per-materialized-row overhead in microseconds, physically consumed by
  /// the engine; models spooling of stored intermediates (disk-backed temp
  /// tables). High for the MySQL-like profile, which is what makes SCQ —
  /// whose components can have huge results — pathologically slow there,
  /// exactly as the paper observes.
  double materialization_us_per_row = 0.0;

  /// Per-union-term fixed overhead in microseconds, physically consumed by
  /// the engine; models per-subplan optimization/setup cost, which is what
  /// makes multi-thousand-term UCQ plans expensive on real engines even
  /// when most terms return nothing (highest for the DB2-like profile).
  double union_term_overhead_us = 0.0;

  /// Wall-clock evaluation timeout (the paper interrupts queries after 2h;
  /// scaled to our ~100x smaller data).
  double timeout_seconds = 60.0;

  /// Degree of intra-query parallelism: the total number of threads (the
  /// coordinating caller plus worker_threads - 1 pool workers) that evaluate
  /// independent UNION disjuncts and JUCQ components concurrently. 1 — the
  /// default, and what every built-in profile uses — runs the exact
  /// sequential executor the paper's single-connection RDBMS setup implies;
  /// results, metrics and EXPLAIN ANALYZE actuals are byte-identical either
  /// way (DESIGN.md §9), only wall-clock changes. Cost-model charging is
  /// thread-count-invariant, so the ECov/GCov cover choice never depends on
  /// this knob.
  size_t worker_threads = 1;

  /// Rows per execution batch (the engine's vector size, MonetDB/X100
  /// style). The per-row emulated overheads above model tuple-at-a-time
  /// interpretation — one operator dispatch, one expression evaluation, one
  /// tuple (de)forming per row. A vectorized engine pays that interpretation
  /// cost once per batch, so the evaluator divides every per-row and
  /// per-term emulated charge (and the planner the matching cost constants)
  /// by this width. 1 — the default, and what the four canonical paper
  /// profiles use — reproduces the paper's tuple-at-a-time engines exactly.
  size_t vector_width = 1;

  /// Enables the planner's union-subplan factoring pass: atom scans shared
  /// by several branches of a union become execute-once shared nodes
  /// (kSharedRef). Off for the canonical paper profiles — sharing changes
  /// per-plan costs, and the paper's engines re-evaluate each branch in
  /// isolation — and on for vectorized profiles.
  bool share_union_subplans = false;

  /// Enables the planner's hierarchy-range collapse (DESIGN.md §12): when
  /// the store carries a HierarchyEncoding, a reformulated N-branch union of
  /// per-class (per-property) scans becomes a single kScanRange interval
  /// scan plus a residual union. Off by default — including for Vectorized
  /// profiles — because it changes plan shapes and costs; opted into by the
  /// shell (`.encoding on`), benchmarks and the hierarchy test suites.
  bool hierarchy_ranges = false;

  /// Issues software prefetches ahead of the probe loops of the hash join
  /// and the radix dedup (ROADMAP "Prefetching + SIMD", first slice). Pure
  /// execution tweak: results are bit-identical either way.
  bool prefetch_probes = false;

  /// Calibrated §4.1 cost-model constants for this engine.
  CostConstants cost;
};

/// A vectorized variant of `base`: batch-at-a-time execution with the given
/// vector width (default kBatchRows = 1024) and union-subplan factoring on.
/// Per-row/per-term cost constants and emulated overheads are amortized over
/// the batch, modelling the interpretation overhead vectorization removes;
/// resource limits and timeout are inherited unchanged.
EngineProfile Vectorized(const EngineProfile& base, size_t width = 1024);

/// The three reformulation-target profiles of the experiments
/// (§5.1), plus the saturation-oriented native-store profile of §5.3.
/// Ordered as the figures list them: DB2-like, Postgres-like, MySQL-like.
const EngineProfile& Db2LikeProfile();       ///< "engine-A"
const EngineProfile& PostgresLikeProfile();  ///< "engine-B"
const EngineProfile& MysqlLikeProfile();     ///< "engine-C"
/// Saturation-only native RDF store stand-in (Virtuoso role in Fig 10).
const EngineProfile& NativeStoreProfile();

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_ENGINE_PROFILE_H_
