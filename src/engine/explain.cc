#include "engine/explain.h"

#include <algorithm>
#include <cstdio>

#include "sparql/printer.h"

namespace rdfopt {

namespace {

std::string FormatRows(double rows) {
  char buf[32];
  if (rows >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", rows / 1e6);
  } else if (rows >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", rows / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", rows);
  }
  return buf;
}

// Greedy join order used by the evaluator (duplicated here in its
// descriptive form: cheapest scan first, then cheapest connected atom).
std::vector<size_t> PlanOrder(const ConjunctiveQuery& cq,
                              const CardinalityEstimator& estimator) {
  const size_t n = cq.atoms.size();
  std::vector<double> cards(n);
  for (size_t i = 0; i < n; ++i) cards[i] = estimator.EstimateAtom(cq.atoms[i]);
  std::vector<bool> used(n, false);
  std::vector<size_t> order;
  while (order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = order.empty();
      for (size_t j : order) {
        connected = connected || cq.atoms[i].SharesVariableWith(cq.atoms[j]);
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           cards[i] < cards[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<size_t>(best));
  }
  return order;
}

void ExplainDisjunct(const ConjunctiveQuery& cq, const VarTable& vars,
                     const Dictionary& dict,
                     const CardinalityEstimator& estimator,
                     std::string* out) {
  std::vector<size_t> order = PlanOrder(cq, estimator);
  ConjunctiveQuery prefix;
  double inter = 0.0;
  for (size_t step = 0; step < order.size(); ++step) {
    const TriplePattern& atom = cq.atoms[order[step]];
    double scanned = estimator.EstimateAtom(atom);
    prefix.atoms.push_back(atom);
    *out += "      ";
    if (step == 0) {
      *out += "scan   " + ToString(atom, vars, dict) + "  [~" +
              FormatRows(scanned) + " rows]\n";
      inter = scanned;
      continue;
    }
    double rows_out = estimator.EstimateCQ(prefix);
    // Mirror the evaluator's heuristic: probe when the intermediate is much
    // smaller than the scan.
    const bool probe = inter * 8.0 < scanned;
    *out += std::string(probe ? "probe  " : "hash   ") +
            ToString(atom, vars, dict) + "  [" +
            (probe ? "index nested loop, ~" + FormatRows(inter) + " probes"
                   : "scan ~" + FormatRows(scanned) + " + hash join") +
            " -> ~" + FormatRows(rows_out) + " rows]\n";
    inter = rows_out;
  }
}

}  // namespace

std::string ExplainJucqPlan(const JoinOfUnions& jucq, const VarTable& vars,
                            const Dictionary& dict,
                            const CardinalityEstimator& estimator,
                            const EngineProfile& profile,
                            size_t max_disjuncts_shown) {
  std::string out = "JUCQ plan (" + std::to_string(jucq.components.size()) +
                    " component(s)) on " + profile.name + "\n";

  // Component result estimates determine pipelining.
  std::vector<double> est(jucq.components.size());
  size_t largest = 0;
  for (size_t c = 0; c < jucq.components.size(); ++c) {
    est[c] = estimator.EstimateUCQ(jucq.components[c]);
    if (est[c] > est[largest]) largest = c;
  }

  for (size_t c = 0; c < jucq.components.size(); ++c) {
    const UnionQuery& component = jucq.components[c];
    out += "  component " + std::to_string(c) + ": UNION of " +
           std::to_string(component.size()) + " term(s), ~" +
           FormatRows(est[c]) + " rows";
    if (jucq.components.size() > 1) {
      out += (c == largest) ? " [pipelined]" : " [materialized]";
    }
    if (component.size() > profile.max_union_terms) {
      out += "  ** exceeds the plan limit of " +
             std::to_string(profile.max_union_terms) + " terms **";
    }
    out += "\n";
    size_t shown = std::min<size_t>(max_disjuncts_shown,
                                    component.disjuncts.size());
    for (size_t d = 0; d < shown; ++d) {
      out += "    term " + std::to_string(d) + ": " +
             ToString(component.disjuncts[d], vars, dict) + "\n";
      ExplainDisjunct(component.disjuncts[d], vars, dict, estimator, &out);
    }
    if (component.disjuncts.size() > shown) {
      out += "    ... " + std::to_string(component.disjuncts.size() - shown) +
             " more term(s)\n";
    }
  }
  if (jucq.components.size() > 1) {
    out += "  final: hash join of the component results, project to q(";
    for (size_t i = 0; i < jucq.head.size(); ++i) {
      if (i > 0) out += ", ";
      out += "?" + vars.name(jucq.head[i]);
    }
    out += "), duplicate elimination\n";
  }
  return out;
}

}  // namespace rdfopt
