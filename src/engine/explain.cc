#include "engine/explain.h"

#include <algorithm>
#include <cstdio>

#include "engine/planner.h"
#include "sparql/printer.h"

namespace rdfopt {

namespace {

std::string FormatRows(double rows) {
  char buf[32];
  if (rows >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", rows / 1e6);
  } else if (rows >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", rows / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", rows);
  }
  return buf;
}

/// View signatures key full UCQ fragments and can run to kilobytes; EXPLAIN
/// shows a prefix long enough to identify the fragment by eye.
std::string AbbreviatedSignature(const std::string& signature) {
  constexpr size_t kMaxShown = 48;
  if (signature.size() <= kMaxShown) return signature;
  return signature.substr(0, kMaxShown) + "...";
}

/// One JUCQ component as found in the plan tree, in execution order.
struct ComponentRef {
  const PlanNode* dedup = nullptr;  // kDedup with component >= 0.
  bool materialized = false;
};

void CollectComponents(const PlanNode* node, bool under_barrier,
                       std::vector<ComponentRef>* out) {
  if (node == nullptr) return;
  if (node->kind == PlanNodeKind::kDedup && node->component >= 0) {
    out->push_back({node, under_barrier});
    return;
  }
  if (node->kind == PlanNodeKind::kMaterializeBarrier) {
    CollectComponents(node->children[0].get(), true, out);
    return;
  }
  for (const auto& child : node->children) {
    CollectComponents(child.get(), under_barrier, out);
  }
}

class PlanPrinter {
 public:
  PlanPrinter(const PhysicalPlan& plan, const VarTable& vars,
              const Dictionary& dict, const ExplainOptions& opts)
      : plan_(plan), vars_(vars), dict_(dict), opts_(opts) {}

  std::string Render() {
    // Batch engines state their vector size in the header; width 1 (the
    // tuple-at-a-time paper profiles) stays silent, keeping goldens stable.
    const std::string vec =
        plan_.vector_width > 1
            ? " [vector=" + std::to_string(plan_.vector_width) + "]"
            : "";
    switch (plan_.shape) {
      case PlanShape::kJucq:
        out_ = "JUCQ plan (" + std::to_string(plan_.num_components) +
               " component(s)) on " + plan_.profile_name + vec + "\n";
        RenderShared();
        RenderJucq();
        break;
      case PlanShape::kUcq:
        out_ = "UCQ plan (" + std::to_string(plan_.union_terms) +
               " term(s)) on " + plan_.profile_name + vec + "\n";
        RenderShared();
        RenderComponent(plan_.root.get(), /*materialized=*/false);
        break;
      case PlanShape::kCq:
        out_ = "CQ plan on " + plan_.profile_name + vec + "\n";
        RenderCq();
        break;
    }
    return std::move(out_);
  }

 private:
  /// "  [#7]" plus, under ANALYZE, the recorded runtime accounting.
  std::string NodeSuffix(const PlanNode& node) const {
    std::string s = "  [#" + std::to_string(node.id) + "]";
    if (!opts_.analyze) return s;
    if (!node.executed) return s + " (not executed)";
    s += " (actual " + std::to_string(node.actual_rows) + " rows";
    if (opts_.analyze_timing) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ", %.2f ms", node.actual_ms);
      s += buf;
    }
    if (node.rows_scanned > 0) {
      s += ", scanned " + std::to_string(node.rows_scanned);
    }
    if (node.hash_probes > 0) {
      s += ", probes " + std::to_string(node.hash_probes);
    }
    if (node.bytes_materialized > 0) {
      s += ", " + std::to_string(node.bytes_materialized) + " bytes";
    }
    return s + ")";
  }

  std::string HeadList(const std::vector<VarId>& head) const {
    std::string s;
    for (size_t i = 0; i < head.size(); ++i) {
      if (i > 0) s += ", ";
      s += "?" + vars_.name(head[i]);
    }
    return s;
  }

  /// Execute-once shared subplans (union-subplan factoring), printed as a
  /// preamble: every consuming branch renders a reference to `s<i>`.
  void RenderShared() {
    for (const auto& sp : plan_.shared_subplans) {
      out_ += "  shared s" + std::to_string(sp->shared_index) + ": scan " +
              ToString(sp->atom, vars_, dict_) + "  [~" +
              FormatRows(sp->est_rows) + " rows, execute once]" +
              NodeSuffix(*sp) + "\n";
    }
  }

  void RenderJucq() {
    // Root: Dedup > Project > (component tree).
    const PlanNode* dedup = plan_.root.get();
    const PlanNode* project = dedup->children[0].get();
    std::vector<ComponentRef> exec_order;
    if (!project->children.empty()) {
      CollectComponents(project->children[0].get(), false, &exec_order);
    }
    // Components print in their original index order; the join order is
    // stated on the final line.
    std::vector<ComponentRef> display = exec_order;
    std::sort(display.begin(), display.end(),
              [](const ComponentRef& a, const ComponentRef& b) {
                return a.dedup->component < b.dedup->component;
              });
    for (const ComponentRef& ref : display) {
      RenderComponent(ref.dedup, ref.materialized);
    }
    if (exec_order.size() > 1) {
      out_ += "  final: hash join of the component results (join order:";
      for (size_t i = 0; i < exec_order.size(); ++i) {
        out_ += (i > 0 ? ", " : " ") +
                std::to_string(exec_order[i].dedup->component);
      }
      out_ += "), project to q(" + HeadList(dedup->out_columns) +
              "), duplicate elimination" + NodeSuffix(*dedup) + "\n";
    }
  }

  void RenderCq() {
    const PlanNode* dedup = plan_.root.get();
    const PlanNode* project = dedup->children[0].get();
    if (!project->children.empty()) {
      RenderChain(project->children[0].get());
    }
    out_ += "  project to q(" + HeadList(dedup->out_columns) +
            "), duplicate elimination" + NodeSuffix(*dedup) + "\n";
  }

  /// One component: its UNION header, sampled term chains, over-limit flag.
  /// `dedup` is the component root (kDedup over kUnionAll, or over kViewScan
  /// when the planner substituted a materialized view for the union).
  void RenderComponent(const PlanNode* dedup, bool materialized) {
    const PlanNode* u = dedup->children[0].get();
    out_ += "  ";
    if (plan_.shape == PlanShape::kJucq) {
      out_ += "component " + std::to_string(dedup->component) + ": ";
    }
    out_ += "UNION of " + std::to_string(u->union_terms) + " term(s), ~" +
            FormatRows(dedup->est_rows) + " rows";
    if (u->pre_collapse_terms > u->union_terms) {
      out_ += " [collapsed from " + std::to_string(u->pre_collapse_terms) +
              "]";
    }
    if (plan_.num_components > 1) {
      out_ += materialized ? " [materialized]" : " [pipelined]";
    }
    if (u->kind == PlanNodeKind::kViewScan) {
      // The union was replaced by a materialized-view read: no term chains
      // to show, just the signature that keyed the substitution.
      out_ += " [view: " + AbbreviatedSignature(u->view_signature) + "]" +
              NodeSuffix(*u) + "\n";
      return;
    }
    if (u->over_limit) {
      out_ += "  ** exceeds the plan limit of " +
              std::to_string(plan_.union_term_limit) + " terms **";
    }
    out_ += NodeSuffix(*dedup) + "\n";

    const size_t shown =
        std::min(opts_.max_union_children_shown, u->children.size());
    for (size_t d = 0; d < shown; ++d) {
      out_ += "    term " + std::to_string(d) + ": " +
              ToString(u->disjuncts[d], vars_, dict_) + "\n";
      RenderChain(u->children[d].get());
    }
    if (u->union_terms > shown) {
      out_ += "    ... " + std::to_string(u->union_terms - shown) +
              " more term(s)\n";
    }
  }

  /// Join chain of one disjunct, one line per step in execution order.
  void RenderChain(const PlanNode* node) {
    switch (node->kind) {
      case PlanNodeKind::kAtomScan:
        if (node->out_columns.empty() && !node->atom.s.is_var() &&
            !node->atom.p.is_var() && !node->atom.o.is_var()) {
          out_ += "      check  " + ToString(node->atom, vars_, dict_) +
                  "  [boolean filter]" + NodeSuffix(*node) + "\n";
        } else {
          out_ += "      scan   " + ToString(node->atom, vars_, dict_) +
                  "  [~" + FormatRows(node->est_rows) + " rows]" +
                  NodeSuffix(*node) + "\n";
        }
        break;
      case PlanNodeKind::kIndexJoinAtom:
        RenderChain(node->children[0].get());
        out_ += "      probe  " + ToString(node->atom, vars_, dict_) +
                "  [index nested loop, ~" +
                FormatRows(node->children[0]->est_rows) + " probes -> ~" +
                FormatRows(node->est_rows) + " rows]" + NodeSuffix(*node) +
                "\n";
        break;
      case PlanNodeKind::kHashJoin: {
        const PlanNode* left = node->children[0].get();
        if (node->out_columns.empty() || left->out_columns.empty()) {
          // Boolean guards: constant filters checked before the scan runs.
          RenderChain(left);
          RenderChain(node->children[1].get());
          break;
        }
        RenderChain(left);
        const PlanNode* scan = node->children[1].get();
        const std::string source =
            scan->kind == PlanNodeKind::kSharedRef
                ? "shared s" + std::to_string(scan->shared_index)
                : "scan ~" + FormatRows(scan->est_rows);
        out_ += "      hash   " + ToString(scan->atom, vars_, dict_) +
                "  [" + source + " + hash join -> ~" +
                FormatRows(node->est_rows) + " rows]" + NodeSuffix(*node) +
                "\n";
        break;
      }
      case PlanNodeKind::kSharedRef:
        out_ += "      scan   " + ToString(node->atom, vars_, dict_) +
                "  [shared s" + std::to_string(node->shared_index) + ", ~" +
                FormatRows(node->est_rows) + " rows]" + NodeSuffix(*node) +
                "\n";
        break;
      case PlanNodeKind::kScanRange:
        out_ += "      range  " + ToString(node->atom, vars_, dict_) +
                "  [" + (node->range_class_space ? "class" : "property") +
                " hids [" + std::to_string(node->range_lo) + "," +
                std::to_string(node->range_hi) + ") x" +
                std::to_string(node->range_terms) + " terms, ~" +
                FormatRows(node->est_rows) + " rows]" + NodeSuffix(*node) +
                "\n";
        break;
      case PlanNodeKind::kProject:
        // An atom-less disjunct: one constant (true) row.
        out_ += "      const  [1 row]" + NodeSuffix(*node) + "\n";
        break;
      case PlanNodeKind::kViewScan:
        out_ += "      view   [" +
                AbbreviatedSignature(node->view_signature) + ", ~" +
                FormatRows(node->est_rows) + " rows]" + NodeSuffix(*node) +
                "\n";
        break;
      default:
        out_ += "      " + std::string(PlanNodeKindName(node->kind)) +
                NodeSuffix(*node) + "\n";
        break;
    }
  }

  const PhysicalPlan& plan_;
  const VarTable& vars_;
  const Dictionary& dict_;
  const ExplainOptions& opts_;
  std::string out_;
};

}  // namespace

std::string ExplainPlan(const PhysicalPlan& plan, const VarTable& vars,
                        const Dictionary& dict, const ExplainOptions& opts) {
  if (plan.root == nullptr) return "(empty plan)\n";
  return PlanPrinter(plan, vars, dict, opts).Render();
}

std::string ExplainJucqPlan(const JoinOfUnions& jucq, const VarTable& vars,
                            const Dictionary& dict,
                            const CardinalityEstimator& estimator,
                            const EngineProfile& profile,
                            size_t max_disjuncts_shown) {
  Planner planner(&estimator, &profile);
  PhysicalPlan plan = planner.PlanJUCQ(jucq);
  ExplainOptions opts;
  opts.max_union_children_shown = max_disjuncts_shown;
  return ExplainPlan(plan, vars, dict, opts);
}

}  // namespace rdfopt
