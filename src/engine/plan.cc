#include "engine/plan.h"

namespace rdfopt {

std::string_view PlanNodeKindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kAtomScan:
      return "AtomScan";
    case PlanNodeKind::kIndexJoinAtom:
      return "IndexJoinAtom";
    case PlanNodeKind::kHashJoin:
      return "HashJoin";
    case PlanNodeKind::kUnionAll:
      return "UnionAll";
    case PlanNodeKind::kProject:
      return "Project";
    case PlanNodeKind::kDedup:
      return "Dedup";
    case PlanNodeKind::kMaterializeBarrier:
      return "MaterializeBarrier";
    case PlanNodeKind::kSharedRef:
      return "SharedRef";
    case PlanNodeKind::kScanRange:
      return "ScanRange";
    case PlanNodeKind::kViewScan:
      return "ViewScan";
  }
  return "Unknown";
}

namespace {
void ResetNode(PlanNode* node) {
  if (node == nullptr) return;
  node->actual_rows = 0;
  node->executed = false;
  node->actual_ms = 0.0;
  node->rows_scanned = 0;
  node->hash_probes = 0;
  node->bytes_materialized = 0;
  for (auto& child : node->children) ResetNode(child.get());
}
}  // namespace

void PhysicalPlan::ResetActuals() {
  for (auto& shared : shared_subplans) ResetNode(shared.get());
  ResetNode(root.get());
}

namespace {
// Field-by-field copy (PlanNode is not copyable: unique_ptr children). Any
// future PlanNode field must be added here or clones silently lose it.
std::unique_ptr<PlanNode> CloneNode(const PlanNode* node) {
  if (node == nullptr) return nullptr;
  auto copy = std::make_unique<PlanNode>(node->kind);
  copy->id = node->id;
  copy->atom = node->atom;
  copy->driving_scan = node->driving_scan;
  copy->head = node->head;
  copy->bindings = node->bindings;
  copy->disjuncts = node->disjuncts;
  copy->over_limit = node->over_limit;
  copy->union_terms = node->union_terms;
  copy->parallel_safe = node->parallel_safe;
  copy->morsel_size = node->morsel_size;
  copy->component = node->component;
  copy->component_join = node->component_join;
  copy->shared_index = node->shared_index;
  copy->range_lo = node->range_lo;
  copy->range_hi = node->range_hi;
  copy->range_class_space = node->range_class_space;
  copy->range_terms = node->range_terms;
  copy->pre_collapse_terms = node->pre_collapse_terms;
  copy->view_signature = node->view_signature;
  copy->view_rows = node->view_rows;
  copy->out_columns = node->out_columns;
  copy->est_rows = node->est_rows;
  copy->est_cost = node->est_cost;
  // actual_rows / executed stay at their fresh defaults: a clone is made to
  // be executed, not to preserve a past execution's annotations.
  copy->children.reserve(node->children.size());
  for (const auto& child : node->children) {
    copy->children.push_back(CloneNode(child.get()));
  }
  return copy;
}
}  // namespace

PhysicalPlan PhysicalPlan::Clone() const {
  PhysicalPlan copy;
  copy.shared_subplans.reserve(shared_subplans.size());
  for (const auto& shared : shared_subplans) {
    copy.shared_subplans.push_back(CloneNode(shared.get()));
  }
  copy.root = CloneNode(root.get());
  copy.shape = shape;
  copy.feasibility = feasibility;
  copy.profile_name = profile_name;
  copy.union_term_limit = union_term_limit;
  copy.num_components = num_components;
  copy.union_terms = union_terms;
  copy.num_nodes = num_nodes;
  copy.vector_width = vector_width;
  return copy;
}

namespace {
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* h, uint64_t v) {
  // Byte-wise FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xff;
    *h *= kFnvPrime;
  }
}

void FnvTerm(uint64_t* h, const PatternTerm& t) {
  FnvMix(h, t.is_var() ? 1u : 2u);
  FnvMix(h, t.is_var() ? t.var() : t.value());
}

void DigestNode(uint64_t* h, const PlanNode* node) {
  if (node == nullptr) return;
  FnvMix(h, static_cast<uint64_t>(node->kind));
  FnvMix(h, static_cast<uint64_t>(node->id));
  FnvTerm(h, node->atom.s);
  FnvTerm(h, node->atom.p);
  FnvTerm(h, node->atom.o);
  FnvMix(h, node->union_terms);
  FnvMix(h, static_cast<uint64_t>(static_cast<int64_t>(node->shared_index)));
  if (node->kind == PlanNodeKind::kScanRange) {
    FnvMix(h, (static_cast<uint64_t>(node->range_lo) << 33) |
                  (static_cast<uint64_t>(node->range_hi) << 1) |
                  (node->range_class_space ? 1u : 0u));
  }
  if (node->kind == PlanNodeKind::kViewScan) {
    // The signature identifies which component UCQ the view stands in for;
    // without it two plans substituting different views would collide.
    for (char c : node->view_signature) {
      *h ^= static_cast<unsigned char>(c);
      *h *= kFnvPrime;
    }
  }
  for (const auto& child : node->children) DigestNode(h, child.get());
}
}  // namespace

uint64_t PlanDigest(const PhysicalPlan& plan) {
  uint64_t h = kFnvOffset;
  FnvMix(&h, static_cast<uint64_t>(plan.shape));
  FnvMix(&h, static_cast<uint64_t>(plan.num_nodes));
  for (const auto& shared : plan.shared_subplans) {
    DigestNode(&h, shared.get());
  }
  DigestNode(&h, plan.root.get());
  return h;
}

}  // namespace rdfopt
