#include "engine/plan.h"

namespace rdfopt {

std::string_view PlanNodeKindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kAtomScan:
      return "AtomScan";
    case PlanNodeKind::kIndexJoinAtom:
      return "IndexJoinAtom";
    case PlanNodeKind::kHashJoin:
      return "HashJoin";
    case PlanNodeKind::kUnionAll:
      return "UnionAll";
    case PlanNodeKind::kProject:
      return "Project";
    case PlanNodeKind::kDedup:
      return "Dedup";
    case PlanNodeKind::kMaterializeBarrier:
      return "MaterializeBarrier";
  }
  return "Unknown";
}

namespace {
void ResetNode(PlanNode* node) {
  if (node == nullptr) return;
  node->actual_rows = 0;
  node->executed = false;
  for (auto& child : node->children) ResetNode(child.get());
}
}  // namespace

void PhysicalPlan::ResetActuals() { ResetNode(root.get()); }

}  // namespace rdfopt
