#include "engine/relation.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"

namespace rdfopt {

int Relation::ColumnIndex(VarId v) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == v) return static_cast<int>(i);
  }
  return -1;
}

void Relation::AppendRow(std::span<const ValueId> row) {
  RDFOPT_DCHECK(row.size() == columns_.size());  // Per-row hot path.
  if (columns_.empty()) {
    ++scalar_rows_;
    return;
  }
  cells_.insert(cells_.end(), row.begin(), row.end());
}

void Relation::AppendEmptyRow() {
  RDFOPT_DCHECK(columns_.empty());
  ++scalar_rows_;
}

void Relation::Append(const Relation& other) {
  RDFOPT_CHECK(other.columns_ == columns_)
      << "Append between relations of different schemas";
  if (columns_.empty()) {
    scalar_rows_ += other.scalar_rows_;
    return;
  }
  cells_.insert(cells_.end(), other.cells_.begin(), other.cells_.end());
}

ValueId* Relation::AppendUninitialized(size_t rows) {
  if (columns_.empty()) {
    scalar_rows_ += rows;
    return nullptr;
  }
  const size_t old = cells_.size();
  cells_.resize(old + rows * columns_.size());
  return cells_.data() + old;
}

void Relation::AppendBatch(const Batch& batch) {
  RDFOPT_CHECK(batch.arity == columns_.size())
      << "batch arity " << batch.arity << " vs relation arity "
      << columns_.size();
  if (columns_.empty()) {
    scalar_rows_ += batch.size();
    return;
  }
  const size_t arity = columns_.size();
  if (batch.sel == nullptr) {
    cells_.insert(cells_.end(), batch.cells, batch.cells + batch.num_rows * arity);
    return;
  }
  ValueId* out = AppendUninitialized(batch.sel_size);
  for (size_t i = 0; i < batch.sel_size; ++i) {
    const ValueId* src = batch.cells + batch.sel[i] * arity;
    for (size_t c = 0; c < arity; ++c) out[c] = src[c];
    out += arity;
  }
}

Relation Relation::Copy() const {
  Relation copy(columns_);
  copy.cells_ = cells_;
  copy.scalar_rows_ = scalar_rows_;
  return copy;
}

size_t HashRow(std::span<const ValueId> row) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (ValueId v : row) {
    h ^= v;
    h *= 0x100000001B3ull;  // FNV-1a step.
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

namespace {

/// Per-row hashes of a flattened buffer, computed batch-at-a-time with
/// unrolled small-arity loops (the dedup equivalent of a vectorized
/// hash-computation primitive).
void HashRows(const ValueId* cells, size_t rows, size_t arity,
              uint64_t* out) {
  constexpr uint64_t kOffset = 0xCBF29CE484222325ull;
  constexpr uint64_t kPrime = 0x100000001B3ull;
  auto step = [](uint64_t h, ValueId v) {
    h ^= v;
    h *= kPrime;
    h ^= h >> 29;
    return h;
  };
  if (arity == 1) {
    for (size_t r = 0; r < rows; ++r) out[r] = step(kOffset, cells[r]);
    return;
  }
  if (arity == 2) {
    for (size_t r = 0; r < rows; ++r) {
      out[r] = step(step(kOffset, cells[2 * r]), cells[2 * r + 1]);
    }
    return;
  }
  for (size_t r = 0; r < rows; ++r) {
    uint64_t h = kOffset;
    const ValueId* p = cells + r * arity;
    for (size_t c = 0; c < arity; ++c) h = step(h, p[c]);
    out[r] = h;
  }
}

bool RowsEqual(const ValueId* a, const ValueId* b, size_t arity) {
  for (size_t c = 0; c < arity; ++c) {
    if (a[c] != b[c]) return false;
  }
  return true;
}

/// Open-addressing table of row indices (linear probing, power-of-two
/// capacity, 0 = empty / index+1 = occupied). One flat array — no per-node
/// allocation or pointer chasing, unlike the std::unordered_set the seed
/// dedup used.
class FlatIndexTable {
 public:
  explicit FlatIndexTable(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, 0);
    mask_ = cap - 1;
  }

  /// Inserts `row` unless a row with equal content is present; returns true
  /// when `row` is new. Rows are offered in ascending original order, so
  /// the resident row of a duplicate group is always its first occurrence.
  bool InsertIfNew(uint64_t hash, uint32_t row, const ValueId* cells,
                   size_t arity, const uint64_t* hashes) {
    size_t i = static_cast<size_t>(hash) & mask_;
    for (;;) {
      const uint32_t slot = slots_[i];
      if (slot == 0) {
        slots_[i] = row + 1;
        return true;
      }
      const uint32_t other = slot - 1;
      if (hashes[other] == hash &&
          RowsEqual(cells + static_cast<size_t>(other) * arity,
                    cells + static_cast<size_t>(row) * arity, arity)) {
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Hints the cache at the home slot of a future probe (see
  /// JoinTable::PrefetchSlot; same rationale).
  void PrefetchSlot(uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[static_cast<size_t>(hash) & mask_]);
#endif
  }

 private:
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
};

/// How many probes ahead the dedup loops prefetch.
constexpr size_t kDedupPrefetchDistance = 8;

/// Inputs below this size skip partitioning: one table already fits the
/// cache and the scatter pass would be pure overhead.
constexpr size_t kDedupPartitionThreshold = 1u << 14;
constexpr size_t kDedupPartitions = 256;  // Radix on the top 8 hash bits.

}  // namespace

size_t Relation::Deduplicate(bool prefetch) {
  if (columns_.empty()) {
    size_t removed = scalar_rows_ > 1 ? scalar_rows_ - 1 : 0;
    scalar_rows_ = scalar_rows_ > 0 ? 1 : 0;
    return removed;
  }
  const size_t arity = columns_.size();
  const size_t rows = num_rows();
  if (rows <= 1) return 0;

  std::vector<uint64_t> hashes(rows);
  HashRows(cells_.data(), rows, arity, hashes.data());

  // `keep[r]` — row r is the first occurrence of its content.
  std::vector<uint8_t> keep(rows, 0);

  if (rows < kDedupPartitionThreshold) {
    FlatIndexTable table(rows);
    for (size_t r = 0; r < rows; ++r) {
      if (prefetch && r + kDedupPrefetchDistance < rows) {
        table.PrefetchSlot(hashes[r + kDedupPrefetchDistance]);
      }
      keep[r] = table.InsertIfNew(hashes[r], static_cast<uint32_t>(r),
                                  cells_.data(), arity, hashes.data());
    }
  } else {
    // Radix partition row indices by hash prefix: each partition's table is
    // small enough to stay cache-resident while it is probed. The scatter
    // is stable, so within a partition rows keep ascending original order
    // and the first occurrence still wins.
    size_t counts[kDedupPartitions] = {0};
    for (size_t r = 0; r < rows; ++r) ++counts[hashes[r] >> 56];
    size_t offsets[kDedupPartitions];
    size_t sum = 0;
    for (size_t p = 0; p < kDedupPartitions; ++p) {
      offsets[p] = sum;
      sum += counts[p];
    }
    std::vector<uint32_t> part_rows(rows);
    size_t cursor[kDedupPartitions];
    std::memcpy(cursor, offsets, sizeof(offsets));
    for (size_t r = 0; r < rows; ++r) {
      part_rows[cursor[hashes[r] >> 56]++] = static_cast<uint32_t>(r);
    }
    for (size_t p = 0; p < kDedupPartitions; ++p) {
      if (counts[p] == 0) continue;
      FlatIndexTable table(counts[p]);
      const uint32_t* begin = part_rows.data() + offsets[p];
      for (size_t i = 0; i < counts[p]; ++i) {
        const uint32_t r = begin[i];
        if (prefetch && i + kDedupPrefetchDistance < counts[p]) {
          table.PrefetchSlot(hashes[begin[i + kDedupPrefetchDistance]]);
        }
        keep[r] = table.InsertIfNew(hashes[r], r, cells_.data(), arity,
                                    hashes.data());
      }
    }
  }

  // Stable compaction: survivors keep their original relative order — the
  // contract both the deterministic parallel merge and the differential
  // tests pin down.
  size_t write = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (!keep[r]) continue;
    if (write != r) {
      std::memcpy(cells_.data() + write * arity, cells_.data() + r * arity,
                  arity * sizeof(ValueId));
    }
    ++write;
  }
  const size_t removed = rows - write;
  cells_.resize(write * arity);
  return removed;
}

size_t Relation::DeduplicateSorted() {
  if (columns_.empty() || num_rows() <= 1) return Deduplicate();
  const size_t arity = columns_.size();
  const size_t rows = num_rows();

  std::vector<uint32_t> order(rows);
  std::iota(order.begin(), order.end(), 0u);
  const ValueId* cells = cells_.data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const ValueId* pa = cells + static_cast<size_t>(a) * arity;
    const ValueId* pb = cells + static_cast<size_t>(b) * arity;
    for (size_t c = 0; c < arity; ++c) {
      if (pa[c] != pb[c]) return pa[c] < pb[c];
    }
    return a < b;  // Ties by original index: each run starts at its first
                   // occurrence.
  });

  std::vector<uint8_t> keep(rows, 0);
  for (size_t i = 0; i < rows; ++i) {
    keep[order[i]] =
        i == 0 || !RowsEqual(cells + static_cast<size_t>(order[i]) * arity,
                             cells + static_cast<size_t>(order[i - 1]) * arity,
                             arity);
  }

  size_t write = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (!keep[r]) continue;
    if (write != r) {
      std::memcpy(cells_.data() + write * arity, cells_.data() + r * arity,
                  arity * sizeof(ValueId));
    }
    ++write;
  }
  const size_t removed = rows - write;
  cells_.resize(write * arity);
  return removed;
}

}  // namespace rdfopt
