#include "engine/relation.h"

#include <cassert>
#include <unordered_set>

namespace rdfopt {

int Relation::ColumnIndex(VarId v) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == v) return static_cast<int>(i);
  }
  return -1;
}

void Relation::AppendRow(std::span<const ValueId> row) {
  assert(row.size() == columns_.size());
  if (columns_.empty()) {
    ++scalar_rows_;
    return;
  }
  cells_.insert(cells_.end(), row.begin(), row.end());
}

void Relation::AppendEmptyRow() {
  assert(columns_.empty());
  ++scalar_rows_;
}

void Relation::Append(const Relation& other) {
  assert(other.columns_ == columns_);
  if (columns_.empty()) {
    scalar_rows_ += other.scalar_rows_;
    return;
  }
  cells_.insert(cells_.end(), other.cells_.begin(), other.cells_.end());
}

size_t HashRow(std::span<const ValueId> row) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (ValueId v : row) {
    h ^= v;
    h *= 0x100000001B3ull;  // FNV-1a step.
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

size_t Relation::Deduplicate() {
  if (columns_.empty()) {
    size_t removed = scalar_rows_ > 1 ? scalar_rows_ - 1 : 0;
    scalar_rows_ = scalar_rows_ > 0 ? 1 : 0;
    return removed;
  }
  const size_t arity = columns_.size();
  const size_t rows = num_rows();

  struct RowRef {
    const std::vector<ValueId>* cells;
    size_t arity;
    size_t index;
  };
  struct RowRefHash {
    size_t operator()(const RowRef& r) const {
      return HashRow({r.cells->data() + r.index * r.arity, r.arity});
    }
  };
  struct RowRefEq {
    bool operator()(const RowRef& a, const RowRef& b) const {
      const ValueId* pa = a.cells->data() + a.index * a.arity;
      const ValueId* pb = b.cells->data() + b.index * b.arity;
      for (size_t i = 0; i < a.arity; ++i) {
        if (pa[i] != pb[i]) return false;
      }
      return true;
    }
  };

  std::unordered_set<RowRef, RowRefHash, RowRefEq> seen;
  seen.reserve(rows);
  size_t write = 0;
  for (size_t read = 0; read < rows; ++read) {
    // Tentatively move row `read` into slot `write`, then keep it only if it
    // is new. Copy first so the hash set always references compacted slots.
    if (write != read) {
      for (size_t c = 0; c < arity; ++c) {
        cells_[write * arity + c] = cells_[read * arity + c];
      }
    }
    if (seen.insert(RowRef{&cells_, arity, write}).second) {
      ++write;
    }
  }
  size_t removed = rows - write;
  cells_.resize(write * arity);
  return removed;
}

}  // namespace rdfopt
