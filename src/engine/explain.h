#ifndef RDFOPT_ENGINE_EXPLAIN_H_
#define RDFOPT_ENGINE_EXPLAIN_H_

#include <string>

#include "cost/cardinality.h"
#include "engine/engine_profile.h"
#include "engine/plan.h"
#include "rdf/dictionary.h"
#include "sparql/query.h"

namespace rdfopt {

/// Rendering options for ExplainPlan.
struct ExplainOptions {
  /// EXPLAIN ANALYZE: append the runtime accounting the executor recorded in
  /// each plan node — actual rows plus, where nonzero, rows scanned, hash
  /// probes and bytes materialized (or "not executed" for short-circuited
  /// subtrees). The plan must have been run through Evaluator::ExecutePlan
  /// first.
  bool analyze = false;
  /// With `analyze`: include each node's wall time. On for humans; golden
  /// tests turn it off, since timings are nondeterministic.
  bool analyze_timing = true;
  /// Per-union detail bound: a 2000-term UNION prints this many sampled
  /// term chains plus a "... N more term(s)" summary line.
  size_t max_union_children_shown = 3;
};

/// Human-readable rendering of a PhysicalPlan — `EXPLAIN` for the embedded
/// engine, used by the SPARQL shell and by debugging sessions around the
/// cost model. This is a pure pretty-printer: every ordering and operator
/// choice shown is read off the plan tree the executor runs, never
/// re-derived. Each operator line ends with the plan-node id (`[#7]`), the
/// correlation key to the `node` attribute on trace spans.
std::string ExplainPlan(const PhysicalPlan& plan, const VarTable& vars,
                        const Dictionary& dict,
                        const ExplainOptions& opts = {});

/// Plans `jucq` with the engine's planner and renders it (estimate-only).
/// Convenience wrapper kept for callers holding a query rather than a plan.
std::string ExplainJucqPlan(const JoinOfUnions& jucq, const VarTable& vars,
                            const Dictionary& dict,
                            const CardinalityEstimator& estimator,
                            const EngineProfile& profile,
                            size_t max_disjuncts_shown = 3);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_EXPLAIN_H_
