#ifndef RDFOPT_ENGINE_EXPLAIN_H_
#define RDFOPT_ENGINE_EXPLAIN_H_

#include <string>

#include "cost/cardinality.h"
#include "engine/engine_profile.h"
#include "rdf/dictionary.h"
#include "sparql/query.h"

namespace rdfopt {

/// Human-readable plan explanation of a JUCQ, mirroring what the evaluator
/// will do: per component, the number of union terms and estimated rows;
/// per (sampled) disjunct, the greedy join order with scan/probe choices
/// and estimated intermediate cardinalities; at the top, the component join
/// order, which component is pipelined and which are materialized. Think
/// `EXPLAIN` for the embedded engine — used by the SPARQL shell and by
/// debugging sessions around the cost model.
///
/// `max_disjuncts_shown` bounds the per-component detail (a 2000-term UCQ
/// prints two sampled disjuncts plus a summary line).
std::string ExplainJucqPlan(const JoinOfUnions& jucq, const VarTable& vars,
                            const Dictionary& dict,
                            const CardinalityEstimator& estimator,
                            const EngineProfile& profile,
                            size_t max_disjuncts_shown = 3);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_EXPLAIN_H_
