#include "engine/operators.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace rdfopt {

namespace {

// The distinct variables of `atom` in first-occurrence s,p,o order, plus for
// each of the three positions the output column it maps to (-1 = constant).
struct AtomShape {
  std::vector<VarId> columns;
  int pos_to_col[3] = {-1, -1, -1};
};

AtomShape ShapeOf(const TriplePattern& atom) {
  AtomShape shape;
  const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_var()) continue;
    VarId v = terms[i]->var();
    int existing = -1;
    for (size_t c = 0; c < shape.columns.size(); ++c) {
      if (shape.columns[c] == v) existing = static_cast<int>(c);
    }
    if (existing < 0) {
      shape.columns.push_back(v);
      existing = static_cast<int>(shape.columns.size()) - 1;
    }
    shape.pos_to_col[i] = existing;
  }
  return shape;
}

ValueId BoundOrAny(const PatternTerm& t) {
  return t.is_var() ? kAnyValue : t.value();
}

}  // namespace

size_t ScanAtomInputSize(const TripleStore& store, const TriplePattern& atom) {
  return store.CountMatches(BoundOrAny(atom.s), BoundOrAny(atom.p),
                            BoundOrAny(atom.o));
}

Relation ScanAtom(const TripleStore& store, const TriplePattern& atom) {
  AtomShape shape = ShapeOf(atom);
  std::span<const Triple> matches = store.Match(
      BoundOrAny(atom.s), BoundOrAny(atom.p), BoundOrAny(atom.o));
  Relation out(shape.columns);
  out.Reserve(matches.size());
  std::vector<ValueId> row(shape.columns.size());
  for (const Triple& t : matches) {
    const ValueId values[3] = {t.s, t.p, t.o};
    bool consistent = true;
    // First write wins; later positions mapping to the same column must
    // agree (repeated-variable filter).
    for (size_t c = 0; c < row.size(); ++c) row[c] = kInvalidValueId;
    for (int i = 0; i < 3 && consistent; ++i) {
      int col = shape.pos_to_col[i];
      if (col < 0) continue;
      if (row[col] == kInvalidValueId) {
        row[col] = values[i];
      } else if (row[col] != values[i]) {
        consistent = false;
      }
    }
    if (consistent) out.AppendRow(row);
  }
  return out;
}

Relation HashJoin(const Relation& left, const Relation& right) {
  // Shared columns and the right-only tail of the output schema.
  std::vector<std::pair<int, int>> shared;  // (left col, right col)
  std::vector<int> right_only;
  for (size_t rc = 0; rc < right.columns().size(); ++rc) {
    int lc = left.ColumnIndex(right.columns()[rc]);
    if (lc >= 0) {
      shared.emplace_back(lc, static_cast<int>(rc));
    } else {
      right_only.push_back(static_cast<int>(rc));
    }
  }
  std::vector<VarId> out_columns = left.columns();
  for (int rc : right_only) out_columns.push_back(right.columns()[rc]);
  Relation out(std::move(out_columns));

  std::vector<ValueId> row(out.arity());
  auto emit = [&](size_t li, size_t ri) {
    for (size_t c = 0; c < left.arity(); ++c) row[c] = left.at(li, c);
    for (size_t k = 0; k < right_only.size(); ++k) {
      row[left.arity() + k] = right.at(ri, right_only[k]);
    }
    out.AppendRow(row);
  };

  if (shared.empty()) {
    // Cartesian product (cover queries never need this; plain CQs may).
    for (size_t li = 0; li < left.num_rows(); ++li) {
      for (size_t ri = 0; ri < right.num_rows(); ++ri) emit(li, ri);
    }
    return out;
  }

  // Build on the smaller side; swap roles virtually by probing accordingly.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;

  auto key_of = [&](const Relation& rel, size_t i, bool is_left,
                    std::vector<ValueId>* key) {
    key->clear();
    for (const auto& [lc, rc] : shared) {
      key->push_back(rel.at(i, is_left ? lc : rc));
    }
  };

  struct VecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      return HashRow({v.data(), v.size()});
    }
  };
  std::unordered_map<std::vector<ValueId>, std::vector<size_t>, VecHash> table;
  table.reserve(build.num_rows());
  std::vector<ValueId> key;
  for (size_t i = 0; i < build.num_rows(); ++i) {
    key_of(build, i, build_left, &key);
    table[key].push_back(i);
  }
  for (size_t i = 0; i < probe.num_rows(); ++i) {
    key_of(probe, i, !build_left, &key);
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t bi : it->second) {
      size_t li = build_left ? bi : i;
      size_t ri = build_left ? i : bi;
      emit(li, ri);
    }
  }
  return out;
}

Relation IndexJoinAtom(const TripleStore& store, const Relation& left,
                       const TriplePattern& atom, size_t* rows_probed) {
  // Classify the atom's positions: bound by a left column, a fresh output
  // variable, or a constant.
  const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
  int left_col[3] = {-1, -1, -1};   // Column of `left` binding position i.
  int out_col[3] = {-1, -1, -1};    // Output column the position fills.
  std::vector<VarId> new_vars;
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_var()) continue;
    VarId v = terms[i]->var();
    left_col[i] = left.ColumnIndex(v);
    if (left_col[i] >= 0) continue;
    int existing = -1;
    for (size_t c = 0; c < new_vars.size(); ++c) {
      if (new_vars[c] == v) existing = static_cast<int>(c);
    }
    if (existing < 0) {
      new_vars.push_back(v);
      existing = static_cast<int>(new_vars.size()) - 1;
    }
    out_col[i] = existing;
  }

  std::vector<VarId> columns = left.columns();
  columns.insert(columns.end(), new_vars.begin(), new_vars.end());
  Relation out(std::move(columns));

  size_t probed = 0;
  std::vector<ValueId> row(out.arity());
  std::vector<ValueId> new_values(new_vars.size());
  for (size_t r = 0; r < left.num_rows(); ++r) {
    ValueId bound[3];
    for (int i = 0; i < 3; ++i) {
      if (!terms[i]->is_var()) {
        bound[i] = terms[i]->value();
      } else if (left_col[i] >= 0) {
        bound[i] = left.at(r, static_cast<size_t>(left_col[i]));
      } else {
        bound[i] = kAnyValue;
      }
    }
    std::span<const Triple> matches = store.Match(bound[0], bound[1],
                                                  bound[2]);
    probed += matches.size();
    for (const Triple& t : matches) {
      const ValueId values[3] = {t.s, t.p, t.o};
      bool consistent = true;
      for (size_t c = 0; c < new_values.size(); ++c) {
        new_values[c] = kInvalidValueId;
      }
      for (int i = 0; i < 3 && consistent; ++i) {
        if (out_col[i] < 0) continue;
        ValueId& slot = new_values[static_cast<size_t>(out_col[i])];
        if (slot == kInvalidValueId) {
          slot = values[i];
        } else if (slot != values[i]) {
          consistent = false;  // Repeated fresh variable mismatch.
        }
      }
      if (!consistent) continue;
      for (size_t c = 0; c < left.arity(); ++c) row[c] = left.at(r, c);
      for (size_t c = 0; c < new_values.size(); ++c) {
        row[left.arity() + c] = new_values[c];
      }
      out.AppendRow(row);
    }
  }
  if (rows_probed != nullptr) *rows_probed += probed;
  return out;
}

Relation ProjectWithBindings(
    const Relation& input, const std::vector<VarId>& head,
    const std::vector<std::pair<VarId, ValueId>>& bindings) {
  Relation out{std::vector<VarId>(head)};
  // For each head position: a source column, or a constant from bindings.
  std::vector<int> source(head.size(), -1);
  std::vector<ValueId> constant(head.size(), kInvalidValueId);
  for (size_t i = 0; i < head.size(); ++i) {
    source[i] = input.ColumnIndex(head[i]);
    if (source[i] < 0) {
      for (const auto& [v, c] : bindings) {
        if (v == head[i]) constant[i] = c;
      }
      assert(constant[i] != kInvalidValueId &&
             "head variable neither bound by the relation nor by bindings");
    }
  }
  out.Reserve(input.num_rows());
  std::vector<ValueId> row(head.size());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t i = 0; i < head.size(); ++i) {
      row[i] = source[i] >= 0 ? input.at(r, source[i]) : constant[i];
    }
    out.AppendRow(row);  // Zero-arity head: appends an empty (boolean) row.
  }
  return out;
}

void UnionInto(Relation* acc, const Relation& input,
               const std::vector<std::pair<VarId, ValueId>>& bindings) {
  Relation projected = ProjectWithBindings(input, acc->columns(), bindings);
  for (size_t r = 0; r < projected.num_rows(); ++r) {
    acc->AppendRow(projected.row(r));
  }
}

}  // namespace rdfopt
