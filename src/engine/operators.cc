#include "engine/operators.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace rdfopt {

namespace {

// The distinct variables of `atom` in first-occurrence s,p,o order, plus for
// each of the three positions the output column it maps to (-1 = constant).
struct AtomShape {
  std::vector<VarId> columns;
  int pos_to_col[3] = {-1, -1, -1};
};

AtomShape ShapeOf(const TriplePattern& atom) {
  AtomShape shape;
  const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_var()) continue;
    VarId v = terms[i]->var();
    int existing = -1;
    for (size_t c = 0; c < shape.columns.size(); ++c) {
      if (shape.columns[c] == v) existing = static_cast<int>(c);
    }
    if (existing < 0) {
      shape.columns.push_back(v);
      existing = static_cast<int>(shape.columns.size()) - 1;
    }
    shape.pos_to_col[i] = existing;
  }
  return shape;
}

ValueId BoundOrAny(const PatternTerm& t) {
  return t.is_var() ? kAnyValue : t.value();
}

}  // namespace

size_t ScanAtomInputSize(const TripleStore& store, const TriplePattern& atom) {
  return store.CountMatches(BoundOrAny(atom.s), BoundOrAny(atom.p),
                            BoundOrAny(atom.o));
}

Relation ScanAtom(const TripleStore& store, const TriplePattern& atom) {
  AtomShape shape = ShapeOf(atom);
  std::span<const Triple> matches = store.Match(
      BoundOrAny(atom.s), BoundOrAny(atom.p), BoundOrAny(atom.o));
  Relation out(shape.columns);
  out.Reserve(matches.size());
  std::vector<ValueId> row(shape.columns.size());

  int var_positions = 0;
  for (int i = 0; i < 3; ++i) {
    if (shape.pos_to_col[i] >= 0) ++var_positions;
  }
  if (static_cast<size_t>(var_positions) == shape.columns.size()) {
    // No repeated variable: every position owns its column, so the
    // per-triple reset/consistency loop is pure overhead — write through.
    for (const Triple& t : matches) {
      const ValueId values[3] = {t.s, t.p, t.o};
      for (int i = 0; i < 3; ++i) {
        int col = shape.pos_to_col[i];
        if (col >= 0) row[static_cast<size_t>(col)] = values[i];
      }
      out.AppendRow(row);
    }
    return out;
  }

  for (const Triple& t : matches) {
    const ValueId values[3] = {t.s, t.p, t.o};
    bool consistent = true;
    // First write wins; later positions mapping to the same column must
    // agree (repeated-variable filter).
    for (size_t c = 0; c < row.size(); ++c) row[c] = kInvalidValueId;
    for (int i = 0; i < 3 && consistent; ++i) {
      int col = shape.pos_to_col[i];
      if (col < 0) continue;
      if (row[col] == kInvalidValueId) {
        row[col] = values[i];
      } else if (row[col] != values[i]) {
        consistent = false;
      }
    }
    if (consistent) out.AppendRow(row);
  }
  return out;
}

Relation HashJoin(const Relation& left, const Relation& right) {
  // Shared columns and the right-only tail of the output schema.
  std::vector<std::pair<int, int>> shared;  // (left col, right col)
  std::vector<int> right_only;
  for (size_t rc = 0; rc < right.columns().size(); ++rc) {
    int lc = left.ColumnIndex(right.columns()[rc]);
    if (lc >= 0) {
      shared.emplace_back(lc, static_cast<int>(rc));
    } else {
      right_only.push_back(static_cast<int>(rc));
    }
  }
  std::vector<VarId> out_columns = left.columns();
  for (int rc : right_only) out_columns.push_back(right.columns()[rc]);
  Relation out(std::move(out_columns));

  std::vector<ValueId> row(out.arity());
  auto emit = [&](size_t li, size_t ri) {
    for (size_t c = 0; c < left.arity(); ++c) row[c] = left.at(li, c);
    for (size_t k = 0; k < right_only.size(); ++k) {
      row[left.arity() + k] = right.at(ri, right_only[k]);
    }
    out.AppendRow(row);
  };

  if (shared.empty()) {
    // Cartesian product (cover queries never need this; plain CQs may).
    out.Reserve(left.num_rows() * right.num_rows());
    for (size_t li = 0; li < left.num_rows(); ++li) {
      for (size_t ri = 0; ri < right.num_rows(); ++ri) emit(li, ri);
    }
    return out;
  }

  // Build on the smaller side; swap roles virtually by probing accordingly.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  // Most probe rows find a partner in reformulation workloads; the probe
  // side bounds the 1:1 case, so reserve that much up front.
  out.Reserve(probe.num_rows());

  if (shared.size() <= 2) {
    // Small-key fast path: pack the (at most two) shared ValueIds of a row
    // into one uint64 — no per-row key vectors, trivial hashing.
    auto key64 = [&](const Relation& rel, size_t i, bool is_left) -> uint64_t {
      uint64_t k = 0;
      for (const auto& [lc, rc] : shared) {
        k = (k << 32) | static_cast<uint64_t>(rel.at(i, is_left ? lc : rc));
      }
      return k;
    };
    std::unordered_map<uint64_t, std::vector<size_t>> table;
    table.reserve(build.num_rows());
    for (size_t i = 0; i < build.num_rows(); ++i) {
      table[key64(build, i, build_left)].push_back(i);
    }
    for (size_t i = 0; i < probe.num_rows(); ++i) {
      auto it = table.find(key64(probe, i, !build_left));
      if (it == table.end()) continue;
      for (size_t bi : it->second) {
        emit(build_left ? bi : i, build_left ? i : bi);
      }
    }
    return out;
  }

  // General path: flatten all build-side keys into one arena and key the
  // table by build row index (one allocation instead of one per row). The
  // sentinel index lets probes look up a scratch key through the same
  // hash/equality functors without inserting it.
  const size_t key_arity = shared.size();
  constexpr size_t kProbeKey = static_cast<size_t>(-1);
  std::vector<ValueId> arena(build.num_rows() * key_arity);
  for (size_t i = 0; i < build.num_rows(); ++i) {
    for (size_t k = 0; k < key_arity; ++k) {
      const auto& [lc, rc] = shared[k];
      arena[i * key_arity + k] = build.at(i, build_left ? lc : rc);
    }
  }
  std::vector<ValueId> probe_key(key_arity);
  auto key_ptr = [&](size_t idx) -> const ValueId* {
    return idx == kProbeKey ? probe_key.data()
                            : arena.data() + idx * key_arity;
  };
  struct ArenaHash {
    const std::function<const ValueId*(size_t)>* at;
    size_t arity;
    size_t operator()(size_t idx) const {
      return HashRow({(*at)(idx), arity});
    }
  };
  struct ArenaEq {
    const std::function<const ValueId*(size_t)>* at;
    size_t arity;
    bool operator()(size_t a, size_t b) const {
      const ValueId* pa = (*at)(a);
      const ValueId* pb = (*at)(b);
      for (size_t k = 0; k < arity; ++k) {
        if (pa[k] != pb[k]) return false;
      }
      return true;
    }
  };
  const std::function<const ValueId*(size_t)> at_fn = key_ptr;
  // Buckets keyed by a representative build row index; rows with equal keys
  // group under the first such row.
  std::unordered_map<size_t, std::vector<size_t>, ArenaHash, ArenaEq> table(
      build.num_rows(), ArenaHash{&at_fn, key_arity},
      ArenaEq{&at_fn, key_arity});
  for (size_t i = 0; i < build.num_rows(); ++i) {
    table[i].push_back(i);
  }
  for (size_t i = 0; i < probe.num_rows(); ++i) {
    for (size_t k = 0; k < key_arity; ++k) {
      const auto& [lc, rc] = shared[k];
      probe_key[k] = probe.at(i, !build_left ? lc : rc);
    }
    auto it = table.find(kProbeKey);
    if (it == table.end()) continue;
    for (size_t bi : it->second) {
      emit(build_left ? bi : i, build_left ? i : bi);
    }
  }
  return out;
}

Relation IndexJoinAtom(const TripleStore& store, const Relation& left,
                       const TriplePattern& atom, size_t* rows_probed) {
  // Classify the atom's positions: bound by a left column, a fresh output
  // variable, or a constant.
  const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
  int left_col[3] = {-1, -1, -1};   // Column of `left` binding position i.
  int out_col[3] = {-1, -1, -1};    // Output column the position fills.
  std::vector<VarId> new_vars;
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_var()) continue;
    VarId v = terms[i]->var();
    left_col[i] = left.ColumnIndex(v);
    if (left_col[i] >= 0) continue;
    int existing = -1;
    for (size_t c = 0; c < new_vars.size(); ++c) {
      if (new_vars[c] == v) existing = static_cast<int>(c);
    }
    if (existing < 0) {
      new_vars.push_back(v);
      existing = static_cast<int>(new_vars.size()) - 1;
    }
    out_col[i] = existing;
  }

  std::vector<VarId> columns = left.columns();
  columns.insert(columns.end(), new_vars.begin(), new_vars.end());
  Relation out(std::move(columns));

  size_t probed = 0;
  std::vector<ValueId> row(out.arity());
  std::vector<ValueId> new_values(new_vars.size());
  for (size_t r = 0; r < left.num_rows(); ++r) {
    ValueId bound[3];
    for (int i = 0; i < 3; ++i) {
      if (!terms[i]->is_var()) {
        bound[i] = terms[i]->value();
      } else if (left_col[i] >= 0) {
        bound[i] = left.at(r, static_cast<size_t>(left_col[i]));
      } else {
        bound[i] = kAnyValue;
      }
    }
    std::span<const Triple> matches = store.Match(bound[0], bound[1],
                                                  bound[2]);
    probed += matches.size();
    for (const Triple& t : matches) {
      const ValueId values[3] = {t.s, t.p, t.o};
      bool consistent = true;
      for (size_t c = 0; c < new_values.size(); ++c) {
        new_values[c] = kInvalidValueId;
      }
      for (int i = 0; i < 3 && consistent; ++i) {
        if (out_col[i] < 0) continue;
        ValueId& slot = new_values[static_cast<size_t>(out_col[i])];
        if (slot == kInvalidValueId) {
          slot = values[i];
        } else if (slot != values[i]) {
          consistent = false;  // Repeated fresh variable mismatch.
        }
      }
      if (!consistent) continue;
      for (size_t c = 0; c < left.arity(); ++c) row[c] = left.at(r, c);
      for (size_t c = 0; c < new_values.size(); ++c) {
        row[left.arity() + c] = new_values[c];
      }
      out.AppendRow(row);
    }
  }
  if (rows_probed != nullptr) *rows_probed += probed;
  return out;
}

Relation ProjectWithBindings(
    const Relation& input, const std::vector<VarId>& head,
    const std::vector<std::pair<VarId, ValueId>>& bindings) {
  Relation out{std::vector<VarId>(head)};
  // For each head position: a source column, or a constant from bindings.
  std::vector<int> source(head.size(), -1);
  std::vector<ValueId> constant(head.size(), kInvalidValueId);
  for (size_t i = 0; i < head.size(); ++i) {
    source[i] = input.ColumnIndex(head[i]);
    if (source[i] < 0) {
      for (const auto& [v, c] : bindings) {
        if (v == head[i]) constant[i] = c;
      }
      assert(constant[i] != kInvalidValueId &&
             "head variable neither bound by the relation nor by bindings");
    }
  }
  out.Reserve(input.num_rows());
  std::vector<ValueId> row(head.size());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t i = 0; i < head.size(); ++i) {
      row[i] = source[i] >= 0 ? input.at(r, source[i]) : constant[i];
    }
    out.AppendRow(row);  // Zero-arity head: appends an empty (boolean) row.
  }
  return out;
}

void ProjectInto(Relation* acc, const Relation& input,
                 const std::vector<std::pair<VarId, ValueId>>& bindings) {
  const std::vector<VarId>& head = acc->columns();
  if (head.empty()) {
    for (size_t r = 0; r < input.num_rows(); ++r) acc->AppendEmptyRow();
    return;
  }
  std::vector<int> source(head.size(), -1);
  std::vector<ValueId> constant(head.size(), kInvalidValueId);
  for (size_t i = 0; i < head.size(); ++i) {
    source[i] = input.ColumnIndex(head[i]);
    if (source[i] < 0) {
      for (const auto& [v, c] : bindings) {
        if (v == head[i]) constant[i] = c;
      }
      assert(constant[i] != kInvalidValueId &&
             "head variable neither bound by the relation nor by bindings");
    }
  }
  acc->Reserve(acc->num_rows() + input.num_rows());
  std::vector<ValueId> row(head.size());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t i = 0; i < head.size(); ++i) {
      row[i] = source[i] >= 0 ? input.at(r, source[i]) : constant[i];
    }
    acc->AppendRow(row);
  }
}

void UnionInto(Relation* acc, const Relation& input,
               const std::vector<std::pair<VarId, ValueId>>& bindings) {
  ProjectInto(acc, input, bindings);
}

}  // namespace rdfopt
