#include "engine/operators.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/check.h"

namespace rdfopt {

namespace {

// The distinct variables of `atom` in first-occurrence s,p,o order, plus for
// each of the three positions the output column it maps to (-1 = constant).
struct AtomShape {
  std::vector<VarId> columns;
  int pos_to_col[3] = {-1, -1, -1};
};

AtomShape ShapeOf(const TriplePattern& atom) {
  AtomShape shape;
  const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_var()) continue;
    VarId v = terms[i]->var();
    int existing = -1;
    for (size_t c = 0; c < shape.columns.size(); ++c) {
      if (shape.columns[c] == v) existing = static_cast<int>(c);
    }
    if (existing < 0) {
      shape.columns.push_back(v);
      existing = static_cast<int>(shape.columns.size()) - 1;
    }
    shape.pos_to_col[i] = existing;
  }
  return shape;
}

ValueId BoundOrAny(const PatternTerm& t) {
  return t.is_var() ? kAnyValue : t.value();
}

uint64_t HashKey(const ValueId* key, size_t arity) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t k = 0; k < arity; ++k) {
    h ^= key[k];
    h *= 0x100000001B3ull;
    h ^= h >> 29;
  }
  return h;
}

bool KeysEqual(const ValueId* a, const ValueId* b, size_t arity) {
  for (size_t k = 0; k < arity; ++k) {
    if (a[k] != b[k]) return false;
  }
  return true;
}

constexpr uint32_t kNoRow = static_cast<uint32_t>(-1);

/// Open-addressing join table over a flattened build-side key arena.
/// Duplicate keys chain through `next_` in build insertion order (head +
/// per-slot tail), so probes replay matches in exactly the order the seed's
/// bucket vectors did — the batch engine must keep output row order
/// bit-identical to the tuple engine.
class JoinTable {
 public:
  JoinTable(const ValueId* keys, const uint64_t* hashes, size_t rows,
            size_t key_arity)
      : keys_(keys), hashes_(hashes), key_arity_(key_arity), next_(rows, kNoRow) {
    size_t cap = 16;
    while (cap < rows * 2) cap <<= 1;
    slots_.assign(cap, 0);
    tails_.assign(cap, kNoRow);
    mask_ = cap - 1;
    for (size_t r = 0; r < rows; ++r) Insert(static_cast<uint32_t>(r));
  }

  /// First build row whose key matches, or kNoRow.
  uint32_t Find(const ValueId* key, uint64_t hash) const {
    size_t i = static_cast<size_t>(hash) & mask_;
    for (;;) {
      const uint32_t slot = slots_[i];
      if (slot == 0) return kNoRow;
      const uint32_t head = slot - 1;
      if (hashes_[head] == hash &&
          KeysEqual(keys_ + static_cast<size_t>(head) * key_arity_, key,
                    key_arity_)) {
        return head;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Next build row with the same key (build insertion order), or kNoRow.
  uint32_t Next(uint32_t row) const { return next_[row]; }

  /// Hints the cache at the home slot of a future probe. The table exceeds
  /// L2 on large builds, so issuing this a few probes ahead hides the
  /// first-slot miss (collision chains still fault, but the first touch
  /// dominates at our load factor).
  void PrefetchSlot(uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[static_cast<size_t>(hash) & mask_]);
#endif
  }

 private:
  void Insert(uint32_t row) {
    const uint64_t hash = hashes_[row];
    size_t i = static_cast<size_t>(hash) & mask_;
    for (;;) {
      const uint32_t slot = slots_[i];
      if (slot == 0) {
        slots_[i] = row + 1;
        tails_[i] = row;
        return;
      }
      const uint32_t head = slot - 1;
      if (hashes_[head] == hash &&
          KeysEqual(keys_ + static_cast<size_t>(head) * key_arity_,
                    keys_ + static_cast<size_t>(row) * key_arity_,
                    key_arity_)) {
        next_[tails_[i]] = row;
        tails_[i] = row;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  const ValueId* keys_;
  const uint64_t* hashes_;
  size_t key_arity_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> slots_;
  std::vector<uint32_t> tails_;
  size_t mask_ = 0;
};

/// Shared scan projection core: appends `matches` projected onto `shape`'s
/// columns to `out`. Positions with `filter[i] != kAnyValue` must equal it
/// (ScanRange re-checks constants its shadow-index slice does not pin), and
/// repeated variables must agree.
void AppendMatches(const AtomShape& shape, std::span<const Triple> matches,
                   const ValueId filter[3], Relation* out) {
  const size_t arity = out->arity();
  const bool has_filter = filter[0] != kAnyValue || filter[1] != kAnyValue ||
                          filter[2] != kAnyValue;
  if (arity == 0) {
    // Boolean output: matches passing the filter contribute one empty row.
    size_t count = 0;
    for (const Triple& t : matches) {
      const ValueId values[3] = {t.s, t.p, t.o};
      bool ok = true;
      for (int i = 0; i < 3; ++i) {
        if (filter[i] != kAnyValue && values[i] != filter[i]) ok = false;
      }
      count += ok ? 1 : 0;
    }
    out->AppendUninitialized(count);
    return;
  }

  int var_positions = 0;
  for (int i = 0; i < 3; ++i) {
    if (shape.pos_to_col[i] >= 0) ++var_positions;
  }
  if (!has_filter && static_cast<size_t>(var_positions) == arity) {
    // No repeated variable, nothing to filter: every match qualifies, so the
    // whole scan is one dense batch — a single grow, then straight-line
    // stores.
    ValueId* w = out->AppendUninitialized(matches.size());
    for (const Triple& t : matches) {
      const ValueId values[3] = {t.s, t.p, t.o};
      for (int i = 0; i < 3; ++i) {
        int col = shape.pos_to_col[i];
        if (col >= 0) w[col] = values[i];
      }
      w += arity;
    }
    return;
  }

  // Filter path: stage qualifying rows batch-at-a-time, then bulk-append
  // each full batch.
  std::vector<ValueId> stage(kBatchRows * arity);
  size_t staged = 0;
  for (const Triple& t : matches) {
    const ValueId values[3] = {t.s, t.p, t.o};
    bool consistent = true;
    for (int i = 0; i < 3; ++i) {
      if (filter[i] != kAnyValue && values[i] != filter[i]) consistent = false;
    }
    if (!consistent) continue;
    ValueId* row = stage.data() + staged * arity;
    // First write wins; later positions mapping to the same column must
    // agree (repeated-variable filter).
    for (size_t c = 0; c < arity; ++c) row[c] = kInvalidValueId;
    for (int i = 0; i < 3 && consistent; ++i) {
      int col = shape.pos_to_col[i];
      if (col < 0) continue;
      if (row[col] == kInvalidValueId) {
        row[col] = values[i];
      } else if (row[col] != values[i]) {
        consistent = false;
      }
    }
    if (!consistent) continue;
    if (++staged == kBatchRows) {
      out->AppendBatch(Batch{stage.data(), arity, staged, nullptr, 0});
      staged = 0;
    }
  }
  if (staged > 0) {
    out->AppendBatch(Batch{stage.data(), arity, staged, nullptr, 0});
  }
}

constexpr ValueId kNoFilter[3] = {kAnyValue, kAnyValue, kAnyValue};

}  // namespace

size_t ScanAtomInputSize(const TripleStore& store, const TriplePattern& atom) {
  return store.CountMatches(BoundOrAny(atom.s), BoundOrAny(atom.p),
                            BoundOrAny(atom.o));
}

Relation ScanAtom(const TripleStore& store, const TriplePattern& atom) {
  AtomShape shape = ShapeOf(atom);
  std::span<const Triple> matches = store.Match(
      BoundOrAny(atom.s), BoundOrAny(atom.p), BoundOrAny(atom.o));
  Relation out(shape.columns);
  AppendMatches(shape, matches, kNoFilter, &out);
  return out;
}

size_t ScanRangeInputSize(const TripleStore& store, bool class_space,
                          uint32_t lo, uint32_t hi) {
  return class_space ? store.CountClassHidRange(lo, hi)
                     : store.CountPropertyHidRange(lo, hi);
}

Relation ScanRange(const TripleStore& store, const TriplePattern& rep_atom,
                   bool class_space, uint32_t lo, uint32_t hi) {
  AtomShape shape = ShapeOf(rep_atom);
  std::span<const Triple> matches = class_space
                                        ? store.MatchClassHidRange(lo, hi)
                                        : store.MatchPropertyHidRange(lo, hi);
  Relation out(shape.columns);
  // The masked position (type-atom object / predicate) ranges over the hid
  // interval, so it is never filtered; other constant positions the shadow
  // index does not pin are re-checked per triple. In class space the
  // predicate is rdf:type on every shadow triple already.
  const int masked = class_space ? 2 : 1;
  const PatternTerm* terms[3] = {&rep_atom.s, &rep_atom.p, &rep_atom.o};
  ValueId filter[3] = {kAnyValue, kAnyValue, kAnyValue};
  for (int i = 0; i < 3; ++i) {
    if (i == masked || terms[i]->is_var()) continue;
    if (class_space && i == 1) continue;
    filter[i] = terms[i]->value();
  }
  AppendMatches(shape, matches, filter, &out);
  return out;
}

Relation HashJoin(const Relation& left, const Relation& right,
                  bool prefetch) {
  // Shared columns and the right-only tail of the output schema.
  std::vector<std::pair<int, int>> shared;  // (left col, right col)
  std::vector<int> right_only;
  for (size_t rc = 0; rc < right.columns().size(); ++rc) {
    int lc = left.ColumnIndex(right.columns()[rc]);
    if (lc >= 0) {
      shared.emplace_back(lc, static_cast<int>(rc));
    } else {
      right_only.push_back(static_cast<int>(rc));
    }
  }
  std::vector<VarId> out_columns = left.columns();
  for (int rc : right_only) out_columns.push_back(right.columns()[rc]);
  Relation out(std::move(out_columns));

  const size_t left_arity = left.arity();
  const size_t right_arity = right.arity();
  const size_t out_arity = out.arity();
  const ValueId* lcells = left.cells_data();
  const ValueId* rcells = right.cells_data();

  // Matched (left row, right row) pairs are buffered and flushed one batch
  // at a time: one grow per batch, then straight-line gathers.
  std::vector<uint32_t> pair_l(kBatchRows);
  std::vector<uint32_t> pair_r(kBatchRows);
  size_t pairs = 0;
  auto flush = [&]() {
    if (pairs == 0) return;
    ValueId* w = out.AppendUninitialized(pairs);
    if (out_arity == 0) {  // Boolean join output: rows are just counted.
      pairs = 0;
      return;
    }
    for (size_t i = 0; i < pairs; ++i) {
      const ValueId* lrow = lcells + static_cast<size_t>(pair_l[i]) * left_arity;
      for (size_t c = 0; c < left_arity; ++c) w[c] = lrow[c];
      const ValueId* rrow = rcells + static_cast<size_t>(pair_r[i]) * right_arity;
      for (size_t k = 0; k < right_only.size(); ++k) {
        w[left_arity + k] = rrow[right_only[k]];
      }
      w += out_arity;
    }
    pairs = 0;
  };
  auto emit = [&](size_t li, size_t ri) {
    pair_l[pairs] = static_cast<uint32_t>(li);
    pair_r[pairs] = static_cast<uint32_t>(ri);
    if (++pairs == kBatchRows) flush();
  };

  if (shared.empty()) {
    // Cartesian product (cover queries never need this; plain CQs may).
    out.Reserve(left.num_rows() * right.num_rows());
    for (size_t li = 0; li < left.num_rows(); ++li) {
      for (size_t ri = 0; ri < right.num_rows(); ++ri) emit(li, ri);
    }
    flush();
    return out;
  }

  // Build on the smaller side; swap roles virtually by probing accordingly.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const size_t build_rows = build.num_rows();
  const size_t probe_rows = probe.num_rows();
  const size_t key_arity = shared.size();
  // Most probe rows find a partner in reformulation workloads; the probe
  // side bounds the 1:1 case, so reserve that much up front.
  out.Reserve(probe_rows);

  // Build phase, batch-at-a-time: gather every build key into one flat
  // arena, hash the arena in one pass, then bulk-insert into the chained
  // open-addressing table — no per-row node allocations.
  std::vector<ValueId> build_keys(build_rows * key_arity);
  {
    const ValueId* bcells = build.cells_data();
    const size_t barity = build.arity();
    ValueId* w = build_keys.data();
    for (size_t i = 0; i < build_rows; ++i) {
      const ValueId* row = bcells + i * barity;
      for (size_t k = 0; k < key_arity; ++k) {
        const auto& [lc, rc] = shared[k];
        w[k] = row[build_left ? lc : rc];
      }
      w += key_arity;
    }
  }
  std::vector<uint64_t> build_hashes(build_rows);
  for (size_t i = 0; i < build_rows; ++i) {
    build_hashes[i] = HashKey(build_keys.data() + i * key_arity, key_arity);
  }
  JoinTable table(build_keys.data(), build_hashes.data(), build_rows,
                  key_arity);

  // Probe phase: keys and hashes of each probe chunk are computed up front
  // (one tight loop each), then the chunk is probed.
  const ValueId* pcells = probe.cells_data();
  const size_t parity = probe.arity();
  std::vector<ValueId> probe_keys(kBatchRows * key_arity);
  std::vector<uint64_t> probe_hashes(kBatchRows);
  for (size_t begin = 0; begin < probe_rows; begin += kBatchRows) {
    const size_t n = std::min(kBatchRows, probe_rows - begin);
    ValueId* w = probe_keys.data();
    for (size_t i = 0; i < n; ++i) {
      const ValueId* row = pcells + (begin + i) * parity;
      for (size_t k = 0; k < key_arity; ++k) {
        const auto& [lc, rc] = shared[k];
        w[k] = row[build_left ? rc : lc];
      }
      w += key_arity;
    }
    for (size_t i = 0; i < n; ++i) {
      probe_hashes[i] = HashKey(probe_keys.data() + i * key_arity, key_arity);
    }
    constexpr size_t kPrefetchDistance = 8;
    for (size_t i = 0; i < n; ++i) {
      if (prefetch && i + kPrefetchDistance < n) {
        table.PrefetchSlot(probe_hashes[i + kPrefetchDistance]);
      }
      uint32_t bi = table.Find(probe_keys.data() + i * key_arity,
                               probe_hashes[i]);
      const size_t pi = begin + i;
      for (; bi != kNoRow; bi = table.Next(bi)) {
        emit(build_left ? bi : pi, build_left ? pi : bi);
      }
    }
  }
  flush();
  return out;
}

Relation IndexJoinAtom(const TripleStore& store, const Relation& left,
                       const TriplePattern& atom, size_t* rows_probed) {
  // Classify the atom's positions: bound by a left column, a fresh output
  // variable, or a constant.
  const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
  int left_col[3] = {-1, -1, -1};   // Column of `left` binding position i.
  int out_col[3] = {-1, -1, -1};    // Output column the position fills.
  std::vector<VarId> new_vars;
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_var()) continue;
    VarId v = terms[i]->var();
    left_col[i] = left.ColumnIndex(v);
    if (left_col[i] >= 0) continue;
    int existing = -1;
    for (size_t c = 0; c < new_vars.size(); ++c) {
      if (new_vars[c] == v) existing = static_cast<int>(c);
    }
    if (existing < 0) {
      new_vars.push_back(v);
      existing = static_cast<int>(new_vars.size()) - 1;
    }
    out_col[i] = existing;
  }

  std::vector<VarId> columns = left.columns();
  columns.insert(columns.end(), new_vars.begin(), new_vars.end());
  Relation out(std::move(columns));
  const size_t left_arity = left.arity();
  const size_t out_arity = out.arity();
  const size_t num_new = new_vars.size();

  // Output rows are staged into a batch buffer and bulk-appended — the index
  // probes stay per-left-row (that is the operator), but the emit path is
  // batched like every other operator's.
  std::vector<ValueId> stage(std::max<size_t>(1, kBatchRows * out_arity));
  size_t staged = 0;
  auto flush = [&]() {
    if (staged == 0) return;
    out.AppendBatch(Batch{stage.data(), out_arity, staged, nullptr, 0});
    staged = 0;
  };

  size_t probed = 0;
  std::vector<ValueId> new_values(num_new);
  for (size_t r = 0; r < left.num_rows(); ++r) {
    ValueId bound[3];
    for (int i = 0; i < 3; ++i) {
      if (!terms[i]->is_var()) {
        bound[i] = terms[i]->value();
      } else if (left_col[i] >= 0) {
        bound[i] = left.at(r, static_cast<size_t>(left_col[i]));
      } else {
        bound[i] = kAnyValue;
      }
    }
    std::span<const Triple> matches = store.Match(bound[0], bound[1],
                                                  bound[2]);
    probed += matches.size();
    if (matches.empty()) continue;
    for (const Triple& t : matches) {
      const ValueId values[3] = {t.s, t.p, t.o};
      bool consistent = true;
      for (size_t c = 0; c < num_new; ++c) new_values[c] = kInvalidValueId;
      for (int i = 0; i < 3 && consistent; ++i) {
        if (out_col[i] < 0) continue;
        ValueId& slot = new_values[static_cast<size_t>(out_col[i])];
        if (slot == kInvalidValueId) {
          slot = values[i];
        } else if (slot != values[i]) {
          consistent = false;  // Repeated fresh variable mismatch.
        }
      }
      if (!consistent) continue;
      if (out_arity == 0) {
        out.AppendEmptyRow();
        continue;
      }
      ValueId* row = stage.data() + staged * out_arity;
      for (size_t c = 0; c < left_arity; ++c) row[c] = left.at(r, c);
      for (size_t c = 0; c < num_new; ++c) row[left_arity + c] = new_values[c];
      if (++staged == kBatchRows) flush();
    }
  }
  flush();
  if (rows_probed != nullptr) *rows_probed += probed;
  return out;
}

namespace {

/// Shared batched projection core: resolves each head position to a source
/// column of `input` or a constant from `bindings`, then appends every input
/// row in one grow + column-at-a-time stores.
void ProjectAppend(Relation* out, const Relation& input,
                   const std::vector<std::pair<VarId, ValueId>>& bindings) {
  const std::vector<VarId>& head = out->columns();
  const size_t rows = input.num_rows();
  if (head.empty()) {
    out->AppendUninitialized(rows);  // Boolean head: rows are just counted.
    return;
  }
  const size_t out_arity = head.size();
  std::vector<int> source(out_arity, -1);
  std::vector<ValueId> constant(out_arity, kInvalidValueId);
  for (size_t i = 0; i < out_arity; ++i) {
    source[i] = input.ColumnIndex(head[i]);
    if (source[i] < 0) {
      for (const auto& [v, c] : bindings) {
        if (v == head[i]) constant[i] = c;
      }
      RDFOPT_CHECK(constant[i] != kInvalidValueId)
          << "head variable neither bound by the relation nor by bindings";
    }
  }
  ValueId* w = out->AppendUninitialized(rows);
  const ValueId* in = input.cells_data();
  const size_t in_arity = input.arity();
  for (size_t i = 0; i < out_arity; ++i) {
    if (source[i] >= 0) {
      const ValueId* src = in + static_cast<size_t>(source[i]);
      ValueId* dst = w + i;
      for (size_t r = 0; r < rows; ++r) {
        *dst = *src;
        src += in_arity;
        dst += out_arity;
      }
    } else {
      const ValueId c = constant[i];
      ValueId* dst = w + i;
      for (size_t r = 0; r < rows; ++r) {
        *dst = c;
        dst += out_arity;
      }
    }
  }
}

}  // namespace

Relation ProjectWithBindings(
    const Relation& input, const std::vector<VarId>& head,
    const std::vector<std::pair<VarId, ValueId>>& bindings) {
  Relation out{std::vector<VarId>(head)};
  ProjectAppend(&out, input, bindings);
  return out;
}

void ProjectInto(Relation* acc, const Relation& input,
                 const std::vector<std::pair<VarId, ValueId>>& bindings) {
  ProjectAppend(acc, input, bindings);
}

void UnionInto(Relation* acc, const Relation& input,
               const std::vector<std::pair<VarId, ValueId>>& bindings) {
  ProjectInto(acc, input, bindings);
}

}  // namespace rdfopt
