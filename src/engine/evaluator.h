#ifndef RDFOPT_ENGINE_EVALUATOR_H_
#define RDFOPT_ENGINE_EVALUATOR_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/worker_pool.h"
#include "cost/cardinality.h"
#include "engine/engine_profile.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/relation.h"
#include "sparql/query.h"
#include "storage/triple_store.h"

namespace rdfopt {

class EstimateFeedbackStore;

/// Counters reported by one query evaluation; the observable behaviour the
/// engine profiles differentiate and the calibration harness fits against.
///
/// These are the lump-sum roll-ups of the per-span counters the evaluator
/// records when tracing is on (common/trace.h): every engine.ucq /
/// op.* span carries the deltas it contributed, and their sum is exactly
/// this struct. `elapsed_ms` is the authoritative engine-measured
/// evaluation time; AnswerOutcome::evaluate_ms is derived from it.
struct EvalMetrics {
  size_t rows_scanned = 0;        ///< Index entries read by atom scans.
  size_t join_input_rows = 0;     ///< Total rows fed into join operators.
  size_t hash_probes = 0;         ///< Probe-side lookups across all joins
                                  ///< (index-join probes + hash-table probes).
  size_t union_terms = 0;         ///< Disjuncts evaluated across all UCQs.
  size_t rows_materialized = 0;   ///< Rows of stored (non-pipelined) inputs.
  size_t bytes_materialized = 0;  ///< Bytes spooled at materialize barriers
                                  ///< (cells × sizeof(ValueId)).
  size_t duplicates_removed = 0;  ///< Rows dropped by duplicate elimination.
  size_t range_rows_scanned = 0;  ///< Rows read by hid-interval range scans
                                  ///< (also included in rows_scanned).
  size_t union_terms_collapsed = 0;  ///< Union terms absorbed into ScanRange
                                     ///< branches (pre-collapse − executed).
  double elapsed_ms = 0.0;        ///< Wall-clock evaluation time.

  /// Adds `other`'s counters into this struct. Parallel workers accumulate
  /// into thread-local instances which the coordinator sums in task order;
  /// integer addition commutes, so totals equal the sequential run's.
  void Accumulate(const EvalMetrics& other) {
    rows_scanned += other.rows_scanned;
    join_input_rows += other.join_input_rows;
    hash_probes += other.hash_probes;
    union_terms += other.union_terms;
    rows_materialized += other.rows_materialized;
    bytes_materialized += other.bytes_materialized;
    duplicates_removed += other.duplicates_removed;
    range_rows_scanned += other.range_rows_scanned;
    union_terms_collapsed += other.union_terms_collapsed;
    elapsed_ms += other.elapsed_ms;
  }
};

/// The result of one plan node: a Relation the node owns, or a borrowed
/// pointer into the plan's execute-once shared results (union-subplan
/// factoring). Borrowing is what makes sharing pay off — a kSharedRef
/// consumed by hundreds of union branches hands out the same materialized
/// relation instead of copying it per branch. Take() copies only when a
/// consumer genuinely needs ownership (in practice never: dedup and
/// projection sit above owned union results).
class RelHandle {
 public:
  RelHandle(Relation rel) : owned_(std::move(rel)) {}  // NOLINT
  explicit RelHandle(const Relation* borrowed) : borrowed_(borrowed) {}

  const Relation& get() const {
    return borrowed_ != nullptr ? *borrowed_ : *owned_;
  }
  bool borrowed() const { return borrowed_ != nullptr; }
  /// An owned Relation: moves the owned value out, or deep-copies the
  /// borrowed one.
  Relation Take() && {
    return borrowed_ != nullptr ? borrowed_->Copy() : std::move(*owned_);
  }

 private:
  std::optional<Relation> owned_;
  const Relation* borrowed_ = nullptr;
};

/// The embedded query evaluation engine: executes PhysicalPlans (see
/// engine/plan.h) against a TripleStore under an EngineProfile, with set
/// semantics.
///
/// Stands in for the paper's external RDBMSs (see DESIGN.md §3). The profile
/// contributes (a) hard limits — max union terms, materialization memory
/// budget, timeout — which reproduce the paper's engine failures, and
/// (b) physical emulation of engine idiosyncrasies: per-union-term plan
/// setup work, and extra copy passes over materialized intermediates
/// (`materialization_weight`), so that measured wall-clock genuinely differs
/// across profiles the way the paper's three systems did.
///
/// All planning decisions (atom order, operator choice, JUCQ component
/// order and pipelining) are made by the Planner; the evaluator is a pure
/// plan executor that walks the tree, charges the profile's emulated costs
/// and writes actual row counts back into the plan nodes. The convenience
/// Evaluate* entry points plan-then-execute in one call.
///
/// With EngineProfile::worker_threads > 1 the executor fans independent
/// UNION disjunct morsels and JUCQ component subtrees out to a WorkerPool,
/// merging per-worker results, metrics and trace buffers in deterministic
/// disjunct order — answers, EvalMetrics totals and EXPLAIN ANALYZE actuals
/// are identical to the sequential run at any thread count (DESIGN.md §9).
class Evaluator {
 public:
  /// Pointees must outlive the evaluator. When `estimator` is null the
  /// evaluator owns a statistics-free estimator over `store` (exact atom
  /// counts; join estimates degrade gracefully), enough for planning.
  Evaluator(const TripleStore* store, const EngineProfile* profile,
            const CardinalityEstimator* estimator = nullptr)
      : store_(store), profile_(profile), external_estimator_(estimator) {
    if (external_estimator_ == nullptr) owned_estimator_.emplace(store, nullptr);
  }

  /// Evaluates a CQ, projects onto its head (honouring head_bindings) and
  /// deduplicates. `metrics` may be null.
  Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq,
                              EvalMetrics* metrics) const;

  /// Evaluates a UCQ (union of projected disjuncts, deduplicated).
  Result<Relation> EvaluateUCQ(const UnionQuery& ucq,
                               EvalMetrics* metrics) const;

  /// Evaluates a JUCQ: component UCQs, materialization of all but the
  /// largest, join, final projection and deduplication.
  Result<Relation> EvaluateJUCQ(const JoinOfUnions& jucq,
                                EvalMetrics* metrics) const;

  /// Executes a previously built plan: walks the tree, charges profile
  /// limits/emulation, records trace spans tagged with plan-node ids and
  /// writes `actual_rows`/`executed` into the nodes (prior actuals are
  /// reset first, so a cached plan can be re-executed). `metrics` may be
  /// null. Returns the plan's feasibility error without executing anything
  /// when some union exceeds the profile's plan limit.
  Result<Relation> ExecutePlan(PhysicalPlan* plan, EvalMetrics* metrics) const;

  /// The engine's *internal* cost estimate of running `jucq` ("EXPLAIN"):
  /// the est_cost annotation of the plan the engine would execute. Used as
  /// the alternative cost model of Fig 9. Infinity when infeasible.
  double ExplainCost(const JoinOfUnions& jucq,
                     const CardinalityEstimator& estimator) const;

  /// Wires the estimate-feedback store: after every successful ExecutePlan
  /// the executed union disjuncts' (estimate, actual) pairs are recorded
  /// into `feedback` (see cost/feedback.h). Opt-in, null disables (the
  /// default — deterministic paper runs must not accumulate state). The
  /// pointee must outlive the evaluator and be thread-safe: concurrent
  /// service requests record through their shared snapshot store.
  void set_feedback(EstimateFeedbackStore* feedback) { feedback_ = feedback; }

  /// Wires the materialized-view catalog (DESIGN.md §14). Opt-in like the
  /// feedback store, null disables (the default). With a resolver set, the
  /// planner substitutes kViewScan nodes for components whose signature
  /// resolves, and ExecDedup offers every freshly deduplicated component
  /// result to the resolver for opportunistic admission. The pointee must
  /// outlive the evaluator and be thread-safe (offers arrive from worker
  /// threads when components execute in parallel).
  void set_views(ViewResolver* views) { views_ = views; }

  /// A planner over this evaluator's estimator and profile — the plans it
  /// builds are exactly the plans Evaluate* executes.
  Planner planner() const {
    Planner p(&estimator(), profile_);
    p.set_view_resolver(views_);
    return p;
  }

  const CardinalityEstimator& estimator() const {
    return external_estimator_ != nullptr ? *external_estimator_
                                          : *owned_estimator_;
  }
  const EngineProfile& profile() const { return *profile_; }
  const TripleStore& store() const { return *store_; }

 private:
  /// Per-evaluation state. The `Shared` part is owned by ExecutePlan and
  /// referenced by every worker task of the query: the timeout deadline is
  /// one clock, the materialization budget one atomic cell counter, and
  /// `cancelled` implements first-error-wins cancellation — a failed task
  /// sets it and every other task of the query aborts at its next
  /// CheckTimeout poll. `metrics`, by contrast, is per-task: workers write
  /// thread-local deltas the coordinator sums deterministically on join.
  struct Exec {
    struct Shared {
      Stopwatch timer;
      std::atomic<size_t> materialized_cells{0};
      std::atomic<bool> cancelled{false};
      /// Set once by ExecutePlan on the coordinating thread; tasks running
      /// on workers read it to fan nested unions back out (the pool's
      /// help-first scheduling makes nested batches deadlock-free). Null
      /// when worker_threads <= 1: every Exec* path is then sequential.
      WorkerPool* pool = nullptr;
      /// Results of the plan's shared_subplans, in index order. Executed by
      /// the coordinator before the tree runs (and before any fan-out), so
      /// worker tasks borrow them read-only without synchronization.
      const std::vector<Relation>* shared_rels = nullptr;
    };
    Shared* shared = nullptr;        // Never null inside ExecNode.
    EvalMetrics* metrics = nullptr;  // Never null inside ExecNode.
    /// Emulated-cost debt of the enclosing worker task, in microseconds.
    /// Null on the sequential path: emulated costs are then spun down
    /// synchronously at the charge site (the seed behaviour). Worker tasks
    /// point this at a task-local accumulator instead and pay the debt in
    /// batched timed waits (WaitFor), which overlap across concurrent
    /// tasks — emulated engine latency parallelizes the way concurrent
    /// connections to a real engine would, without burning a core per
    /// worker. The amount charged per operator is identical either way.
    double* debt = nullptr;
  };

  Status CheckTimeout(const Exec& exec) const;
  /// Accounts (and physically emulates) materializing `rel`; fails when the
  /// profile's memory budget is exceeded.
  Status ChargeMaterialization(const Relation& rel, Exec* exec) const;
  /// Physically consumes `micros` of CPU, emulating fixed plan overheads.
  static void SpinFor(double micros);
  /// Consumes `micros` of wall-clock without holding the CPU: sleeps in
  /// coarse chunks, then spins the final sub-slack remainder for precision.
  static void WaitFor(double micros);
  /// Charges `micros` of emulated engine work: spins immediately on the
  /// sequential path, accumulates into the task's debt otherwise.
  static void ChargeEmulated(Exec* exec, double micros);

  /// The worker pool backing worker_threads > 1, created lazily (the profile
  /// may be reconfigured between queries, e.g. the shell's `.threads`) and
  /// resized when the knob changes. Null when worker_threads <= 1. Only the
  /// coordinating thread calls this.
  WorkerPool* pool() const;

  /// Recursive plan-tree interpreter; writes actuals into `node`. Returns a
  /// RelHandle so kSharedRef nodes hand their execute-once result to each
  /// consuming branch by reference instead of by copy.
  Result<RelHandle> ExecNode(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecAtomScan(PlanNode* node, Exec* exec) const;
  /// One hid-interval scan over the store's hierarchy shadow index,
  /// replacing the N member scans of a collapsed union group.
  Result<RelHandle> ExecScanRange(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecIndexJoin(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecHashJoin(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecUnionAll(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecProject(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecDedup(PlanNode* node, Exec* exec) const;
  /// Reads the materialized view rows pinned in the node, re-labelled with
  /// the node's out_columns (the stored relation carries the populating
  /// query's VarIds; arity and column order match by signature).
  Result<RelHandle> ExecViewScan(PlanNode* node, Exec* exec) const;
  Result<RelHandle> ExecMaterialize(PlanNode* node, Exec* exec) const;
  /// Borrows the already-materialized shared result this node references.
  /// Charges nothing: the shared subplan's scan work and counters were
  /// attributed once, when the coordinator executed it.
  Result<RelHandle> ExecSharedRef(PlanNode* node, Exec* exec) const;

  /// Fans the union's disjunct subtrees out to the pool in morsels; each
  /// task accumulates into a thread-local Relation, then the coordinator
  /// merges accumulators, metrics and trace buffers in disjunct index order,
  /// making results and counters bit-identical to the sequential loop.
  Result<RelHandle> ExecUnionAllParallel(PlanNode* node, Exec* exec) const;
  /// Executes the two children of a component-level JUCQ join concurrently
  /// (the caller participates, so nested parallel unions keep making
  /// progress), preserving the sequential left-then-right merge order for
  /// metrics and trace spans.
  Status ExecComponentChildrenParallel(PlanNode* node, Exec* exec,
                                       std::optional<RelHandle>* left,
                                       std::optional<RelHandle>* right) const;

  const TripleStore* store_;
  const EngineProfile* profile_;
  const CardinalityEstimator* external_estimator_;
  std::optional<CardinalityEstimator> owned_estimator_;
  EstimateFeedbackStore* feedback_ = nullptr;
  ViewResolver* views_ = nullptr;
  /// shared_ptr keeps the evaluator copyable (copies share the pool, which
  /// is safe: pools are stateless between batches).
  mutable std::shared_ptr<WorkerPool> pool_;
};

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_EVALUATOR_H_
