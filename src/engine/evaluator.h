#ifndef RDFOPT_ENGINE_EVALUATOR_H_
#define RDFOPT_ENGINE_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "cost/cardinality.h"
#include "engine/engine_profile.h"
#include "engine/relation.h"
#include "sparql/query.h"
#include "storage/triple_store.h"

namespace rdfopt {

/// Counters reported by one query evaluation; the observable behaviour the
/// engine profiles differentiate and the calibration harness fits against.
///
/// These are the lump-sum roll-ups of the per-span counters the evaluator
/// records when tracing is on (common/trace.h): every engine.ucq /
/// op.* span carries the deltas it contributed, and their sum is exactly
/// this struct. `elapsed_ms` is the authoritative engine-measured
/// evaluation time; AnswerOutcome::evaluate_ms is derived from it.
struct EvalMetrics {
  size_t rows_scanned = 0;        ///< Index entries read by atom scans.
  size_t join_input_rows = 0;     ///< Total rows fed into join operators.
  size_t union_terms = 0;         ///< Disjuncts evaluated across all UCQs.
  size_t rows_materialized = 0;   ///< Rows of stored (non-pipelined) inputs.
  size_t duplicates_removed = 0;  ///< Rows dropped by duplicate elimination.
  double elapsed_ms = 0.0;        ///< Wall-clock evaluation time.
};

/// The embedded query evaluation engine: evaluates CQs, UCQs and JUCQs
/// against a TripleStore under an EngineProfile, with set semantics.
///
/// Stands in for the paper's external RDBMSs (see DESIGN.md §3). The profile
/// contributes (a) hard limits — max union terms, materialization memory
/// budget, timeout — which reproduce the paper's engine failures, and
/// (b) physical emulation of engine idiosyncrasies: per-union-term plan
/// setup work, and extra copy passes over materialized intermediates
/// (`materialization_weight`), so that measured wall-clock genuinely differs
/// across profiles the way the paper's three systems did.
///
/// Plans: within a CQ, atoms are scanned through the best permutation index
/// and hash-joined in a greedy order (smallest scan first, then the smallest
/// connected atom — the join ordering the paper leaves to the RDBMS). A
/// JUCQ evaluates each component UCQ, materializes all but the largest result
/// (the paper's pipelining assumption, §4.1(v)), joins them and projects.
class Evaluator {
 public:
  /// Pointees must outlive the evaluator.
  Evaluator(const TripleStore* store, const EngineProfile* profile)
      : store_(store), profile_(profile) {}

  /// Evaluates a CQ, projects onto its head (honouring head_bindings) and
  /// deduplicates. `metrics` may be null.
  Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq,
                              EvalMetrics* metrics) const;

  /// Evaluates a UCQ (union of projected disjuncts, deduplicated).
  Result<Relation> EvaluateUCQ(const UnionQuery& ucq,
                               EvalMetrics* metrics) const;

  /// Evaluates a JUCQ: component UCQs, materialization of all but the
  /// largest, join, final projection and deduplication.
  Result<Relation> EvaluateJUCQ(const JoinOfUnions& jucq,
                                EvalMetrics* metrics) const;

  /// The engine's *internal* cost estimate of running `jucq` ("EXPLAIN").
  /// Unlike the paper's §4.1 model it walks the plan the engine would pick,
  /// costing each join step from estimated intermediate cardinalities. Used
  /// as the alternative cost model of Fig 9.
  double ExplainCost(const JoinOfUnions& jucq,
                     const CardinalityEstimator& estimator) const;

  const EngineProfile& profile() const { return *profile_; }
  const TripleStore& store() const { return *store_; }

 private:
  struct Exec {
    Stopwatch timer;
    size_t materialized_cells = 0;
    EvalMetrics* metrics = nullptr;  // Never null inside Run* (scratch used).
  };

  Status CheckTimeout(const Exec& exec) const;
  /// Accounts (and physically emulates) materializing `rel`; fails when the
  /// profile's memory budget is exceeded.
  Status ChargeMaterialization(const Relation& rel, Exec* exec) const;
  /// Physically consumes `micros` of CPU, emulating fixed plan overheads.
  static void SpinFor(double micros);

  /// Full evaluation of the conjunction over all its variables (no head
  /// projection); empty results still carry the full column set.
  Result<Relation> RunCQ(const ConjunctiveQuery& cq, Exec* exec) const;
  /// Union of projected disjuncts, deduplicated.
  Result<Relation> RunUCQ(const UnionQuery& ucq, Exec* exec) const;

  /// Greedy join order of the CQ's atoms: cheapest scan first, then the
  /// cheapest atom sharing a variable with what is joined so far.
  std::vector<size_t> JoinOrder(const ConjunctiveQuery& cq) const;

  const TripleStore* store_;
  const EngineProfile* profile_;
};

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_EVALUATOR_H_
