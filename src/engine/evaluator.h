#ifndef RDFOPT_ENGINE_EVALUATOR_H_
#define RDFOPT_ENGINE_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "cost/cardinality.h"
#include "engine/engine_profile.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/relation.h"
#include "sparql/query.h"
#include "storage/triple_store.h"

namespace rdfopt {

/// Counters reported by one query evaluation; the observable behaviour the
/// engine profiles differentiate and the calibration harness fits against.
///
/// These are the lump-sum roll-ups of the per-span counters the evaluator
/// records when tracing is on (common/trace.h): every engine.ucq /
/// op.* span carries the deltas it contributed, and their sum is exactly
/// this struct. `elapsed_ms` is the authoritative engine-measured
/// evaluation time; AnswerOutcome::evaluate_ms is derived from it.
struct EvalMetrics {
  size_t rows_scanned = 0;        ///< Index entries read by atom scans.
  size_t join_input_rows = 0;     ///< Total rows fed into join operators.
  size_t union_terms = 0;         ///< Disjuncts evaluated across all UCQs.
  size_t rows_materialized = 0;   ///< Rows of stored (non-pipelined) inputs.
  size_t duplicates_removed = 0;  ///< Rows dropped by duplicate elimination.
  double elapsed_ms = 0.0;        ///< Wall-clock evaluation time.
};

/// The embedded query evaluation engine: executes PhysicalPlans (see
/// engine/plan.h) against a TripleStore under an EngineProfile, with set
/// semantics.
///
/// Stands in for the paper's external RDBMSs (see DESIGN.md §3). The profile
/// contributes (a) hard limits — max union terms, materialization memory
/// budget, timeout — which reproduce the paper's engine failures, and
/// (b) physical emulation of engine idiosyncrasies: per-union-term plan
/// setup work, and extra copy passes over materialized intermediates
/// (`materialization_weight`), so that measured wall-clock genuinely differs
/// across profiles the way the paper's three systems did.
///
/// All planning decisions (atom order, operator choice, JUCQ component
/// order and pipelining) are made by the Planner; the evaluator is a pure
/// plan executor that walks the tree, charges the profile's emulated costs
/// and writes actual row counts back into the plan nodes. The convenience
/// Evaluate* entry points plan-then-execute in one call.
class Evaluator {
 public:
  /// Pointees must outlive the evaluator. When `estimator` is null the
  /// evaluator owns a statistics-free estimator over `store` (exact atom
  /// counts; join estimates degrade gracefully), enough for planning.
  Evaluator(const TripleStore* store, const EngineProfile* profile,
            const CardinalityEstimator* estimator = nullptr)
      : store_(store), profile_(profile), external_estimator_(estimator) {
    if (external_estimator_ == nullptr) owned_estimator_.emplace(store, nullptr);
  }

  /// Evaluates a CQ, projects onto its head (honouring head_bindings) and
  /// deduplicates. `metrics` may be null.
  Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq,
                              EvalMetrics* metrics) const;

  /// Evaluates a UCQ (union of projected disjuncts, deduplicated).
  Result<Relation> EvaluateUCQ(const UnionQuery& ucq,
                               EvalMetrics* metrics) const;

  /// Evaluates a JUCQ: component UCQs, materialization of all but the
  /// largest, join, final projection and deduplication.
  Result<Relation> EvaluateJUCQ(const JoinOfUnions& jucq,
                                EvalMetrics* metrics) const;

  /// Executes a previously built plan: walks the tree, charges profile
  /// limits/emulation, records trace spans tagged with plan-node ids and
  /// writes `actual_rows`/`executed` into the nodes (prior actuals are
  /// reset first, so a cached plan can be re-executed). `metrics` may be
  /// null. Returns the plan's feasibility error without executing anything
  /// when some union exceeds the profile's plan limit.
  Result<Relation> ExecutePlan(PhysicalPlan* plan, EvalMetrics* metrics) const;

  /// The engine's *internal* cost estimate of running `jucq` ("EXPLAIN"):
  /// the est_cost annotation of the plan the engine would execute. Used as
  /// the alternative cost model of Fig 9. Infinity when infeasible.
  double ExplainCost(const JoinOfUnions& jucq,
                     const CardinalityEstimator& estimator) const;

  /// A planner over this evaluator's estimator and profile — the plans it
  /// builds are exactly the plans Evaluate* executes.
  Planner planner() const { return Planner(&estimator(), profile_); }

  const CardinalityEstimator& estimator() const {
    return external_estimator_ != nullptr ? *external_estimator_
                                          : *owned_estimator_;
  }
  const EngineProfile& profile() const { return *profile_; }
  const TripleStore& store() const { return *store_; }

 private:
  struct Exec {
    Stopwatch timer;
    size_t materialized_cells = 0;
    EvalMetrics* metrics = nullptr;  // Never null inside ExecNode.
  };

  Status CheckTimeout(const Exec& exec) const;
  /// Accounts (and physically emulates) materializing `rel`; fails when the
  /// profile's memory budget is exceeded.
  Status ChargeMaterialization(const Relation& rel, Exec* exec) const;
  /// Physically consumes `micros` of CPU, emulating fixed plan overheads.
  static void SpinFor(double micros);

  /// Recursive plan-tree interpreter; writes actuals into `node`.
  Result<Relation> ExecNode(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecAtomScan(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecIndexJoin(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecHashJoin(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecUnionAll(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecProject(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecDedup(PlanNode* node, Exec* exec) const;
  Result<Relation> ExecMaterialize(PlanNode* node, Exec* exec) const;

  const TripleStore* store_;
  const EngineProfile* profile_;
  const CardinalityEstimator* external_estimator_;
  std::optional<CardinalityEstimator> owned_estimator_;
};

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_EVALUATOR_H_
