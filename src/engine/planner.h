#ifndef RDFOPT_ENGINE_PLANNER_H_
#define RDFOPT_ENGINE_PLANNER_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/cardinality.h"
#include "cost/range_collapse.h"
#include "engine/engine_profile.h"
#include "engine/plan.h"
#include "engine/view_resolver.h"
#include "sparql/query.h"

namespace rdfopt {

/// THE greedy atom ordering of the engine (DESIGN.md §3): the first atom is
/// the one with the smallest estimated scan, every further pick prefers
/// atoms sharing a variable with what is ordered so far and, among equals,
/// the smallest scan (ties resolved to the lowest index). This used to be
/// re-derived in the evaluator, the explainer and the engine cost walk; it
/// now exists exactly once and every consumer goes through the plan built
/// from it. `cards` must hold one estimated scan size per atom.
std::vector<size_t> GreedyAtomOrder(const std::vector<TriplePattern>& atoms,
                                    const std::vector<double>& cards);

/// The kQueryTooComplex message the engine reports for a union over the
/// profile's plan limit; shared by the planner (plan feasibility) and the
/// executor so both surfaces show the identical error.
std::string UnionLimitMessage(size_t union_terms, const EngineProfile& profile);

/// Builds PhysicalPlan trees for CQs, UCQs and JUCQs from estimated
/// cardinalities and an engine profile. All ordering and operator-choice
/// decisions are made here, at plan time, from estimates:
///
///  * atom order per disjunct: GreedyAtomOrder above;
///  * operator per join step: index nested loop when the atom binds a
///    variable of the intermediate and the estimated intermediate is 8x
///    smaller than the atom's scan, hash join over a full scan otherwise;
///  * JUCQ component order: CombineComponents (smallest estimate first,
///    then smallest sharing a column), with the largest-estimate component
///    pipelined and all others behind a MaterializeBarrier (paper §4.1(v));
///  * parallelism: executable unions are marked parallel_safe (their
///    disjuncts are independent CQs) and, when the profile runs more than
///    one worker thread, their disjunct lists are partitioned into morsels
///    (PlanNode::morsel_size) the evaluator fans out to the worker pool.
///    Estimated costs are deliberately thread-count-invariant: the plan and
///    the cover chosen from it never depend on worker_threads (DESIGN.md §9).
///
/// Every node is annotated with its estimated output rows and the
/// cumulative §4.1-model cost of its subtree, so the same tree serves as
/// the engine's EXPLAIN estimate (Evaluator::ExplainCost) and as the
/// executable plan — estimate and execution cannot drift apart.
class Planner {
 public:
  /// Pointees must outlive the planner.
  Planner(const CardinalityEstimator* estimator, const EngineProfile* profile)
      : estimator_(estimator), profile_(profile) {}

  PhysicalPlan PlanCQ(const ConjunctiveQuery& cq) const;
  PhysicalPlan PlanUCQ(const UnionQuery& ucq) const;
  PhysicalPlan PlanJUCQ(const JoinOfUnions& jucq) const;

  /// The JUCQ component-combination decision, exposed separately so the
  /// cover cost oracle can price a candidate cover from cached per-fragment
  /// costs without re-planning the fragments. Inputs are
  /// (estimated rows, output columns) per component, in component order.
  struct ComponentCombination {
    std::vector<size_t> order;  ///< Join order (indices into the input).
    size_t pipelined = 0;       ///< Component not materialized (largest est).
    /// Materialization (c_m) + join (c_j) cost of combining the components;
    /// zero for a single component.
    double combine_cost = 0.0;
    double est_rows = 0.0;  ///< Estimated rows of the joined result.
  };
  ComponentCombination CombineComponents(
      const std::vector<std::pair<double, std::vector<VarId>>>& components)
      const;

  const CardinalityEstimator& estimator() const { return *estimator_; }
  const EngineProfile& profile() const { return *profile_; }

  /// Wires the materialized-view catalog (DESIGN.md §14); null disables.
  /// With a resolver set, every executable component the planner builds is
  /// announced to it, and components whose ViewSignature resolves to
  /// materialized rows have their union subtree replaced by a kViewScan
  /// node. The view node inherits the replaced subtree's estimates, so
  /// join order, pipelining, feasibility and cover pricing are identical
  /// with views on or off — substitution accelerates execution only.
  void set_view_resolver(ViewResolver* views) { views_ = views; }

 private:
  /// Identity of a triple pattern (term kinds + variable ids / constant
  /// values per position) — the key of the union-subplan factoring pass:
  /// two scans with equal keys produce the identical relation.
  using SharedAtomKey = std::array<uint64_t, 6>;
  using SharedScanMap = std::map<SharedAtomKey, int>;

  /// Join tree over the disjunct's atoms (constant atoms become boolean
  /// existence guards below the driving scan); no projection or dedup.
  /// Null for a disjunct with no atoms (the always-true CQ).
  /// When `shared_scans` is non-null, scans of atoms in the map become
  /// kSharedRef leaves (est_cost 0 — the shared subplan is priced once at
  /// the union); operator choices are estimate-driven and unaffected.
  std::unique_ptr<PlanNode> BuildCqChain(
      const ConjunctiveQuery& cq,
      const SharedScanMap* shared_scans = nullptr) const;
  /// Dedup(UnionAll(disjunct chains)) — one JUCQ component (or a whole UCQ).
  /// With profile().share_union_subplans, atom scans appearing in two or
  /// more disjunct chains are factored into execute-once subplans appended
  /// to `shared_out` (the plan's shared_subplans vector); null disables.
  /// With profile().hierarchy_ranges and a store-attached HierarchyEncoding,
  /// a range-collapse pass (cost/range_collapse.h) runs first: collapsible
  /// disjunct groups become single kScanRange-driven branches and the
  /// union's term count, over-limit flag and morsels are computed
  /// post-collapse — callers read them off the built union node.
  std::unique_ptr<PlanNode> BuildComponent(
      const UnionQuery& ucq, int component_index,
      std::vector<std::unique_ptr<PlanNode>>* shared_out) const;
  /// Union of kScanRange branches (one per collapsed range) and ordinary
  /// residual chains, ordered by smallest source disjunct.
  std::unique_ptr<PlanNode> BuildCollapsedComponent(
      const UnionQuery& ucq, const RangeCollapsePlan& rc,
      int component_index) const;
  /// Join chain of the representative disjunct with the masked atom pinned
  /// as a kScanRange driving scan over the range's hid interval (the shadow
  /// index has no per-subject order across hids, so the ranged atom is
  /// never index-probed).
  std::unique_ptr<PlanNode> BuildRangeChain(const ConjunctiveQuery& cq,
                                            const CollapsedRange& range) const;
  /// View-catalog tail of BuildComponent: announces the component to the
  /// resolver and, on a catalog hit, swaps the dedup root's union subtree
  /// for a kViewScan carrying the subtree's own estimates. `shared_base` is
  /// shared_out's size before this component was built — substitution
  /// truncates back to it, dropping subplans only the replaced chains
  /// referenced. No-op without a resolver.
  std::unique_ptr<PlanNode> FinishComponent(
      std::unique_ptr<PlanNode> dedup, const UnionQuery& ucq,
      std::vector<std::unique_ptr<PlanNode>>* shared_out,
      size_t shared_base) const;
  /// Preorder ids + node count + plan-level aggregates.
  void Finalize(PhysicalPlan* plan) const;

  const CardinalityEstimator* estimator_;
  const EngineProfile* profile_;
  ViewResolver* views_ = nullptr;
};

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_PLANNER_H_
