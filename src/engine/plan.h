#ifndef RDFOPT_ENGINE_PLAN_H_
#define RDFOPT_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sparql/query.h"

namespace rdfopt {

class Relation;

/// The typed physical-plan tree shared by every consumer of the engine (see
/// DESIGN.md §3): the Planner builds it once per query, the cost model's
/// per-step walk annotates it with estimates, EXPLAIN pretty-prints it, the
/// trace layer tags spans with its node ids, and the Evaluator executes it,
/// writing actual row counts back into the same nodes. Estimate/execution
/// agreement — the premise of the paper's §4 cost model — is therefore true
/// by construction: there is no second derivation of any ordering decision.

/// Physical operator of one plan node.
enum class PlanNodeKind {
  kAtomScan,            ///< Index scan of one triple pattern (or, for an
                        ///< all-constant atom, a boolean existence filter).
  kIndexJoinAtom,       ///< Index nested-loop join: probe the atom's best
                        ///< permutation index once per row of the child.
  kHashJoin,            ///< Hash join of the two children (build on smaller).
  kUnionAll,            ///< Bag union of the children projected onto `head`
                        ///< (per-child constant bindings applied).
  kProject,             ///< Projection onto `head` with constant bindings.
  kDedup,               ///< Duplicate elimination (set semantics).
  kMaterializeBarrier,  ///< Child result is spooled: charged against the
                        ///< engine's materialization budget and overheads.
  kSharedRef,           ///< Reference to an execute-once shared subplan of
                        ///< the enclosing plan (union-subplan factoring):
                        ///< the node produces the shared result by
                        ///< reference, without re-executing it.
  kScanRange,           ///< Hierarchy interval scan (DESIGN.md §12): one
                        ///< slice of the hid-ordered shadow index covering
                        ///< what would otherwise be a union of per-constant
                        ///< scans over `[range_lo, range_hi)`.
  kViewScan,            ///< Materialized-view read (DESIGN.md §14): the rows
                        ///< of a whole component UCQ, previously computed and
                        ///< admitted to the ViewCatalog, substituted for the
                        ///< component's union subtree. Carries the estimates
                        ///< of the subtree it replaced, so every planning
                        ///< decision (join order, pipelining, cover pricing)
                        ///< is identical with views on or off.
};

std::string_view PlanNodeKindName(PlanNodeKind kind);

/// One node of the physical plan. Which payload fields are meaningful
/// depends on `kind`; estimates are filled by the Planner, actuals by the
/// Evaluator when the plan is executed.
struct PlanNode {
  explicit PlanNode(PlanNodeKind k) : kind(k) {}

  PlanNodeKind kind;
  /// Preorder id, unique within the plan; the correlation key between
  /// EXPLAIN output and trace spans (spans carry a `node` attribute).
  int id = -1;
  std::vector<std::unique_ptr<PlanNode>> children;

  // --- Operator payload -------------------------------------------------
  TriplePattern atom;   ///< kAtomScan, kIndexJoinAtom.
  /// kAtomScan: true for the pipelined driving scan at the base of a join
  /// chain (charged per-tuple executor overhead); scans feeding a hash join
  /// are charged through the join instead, mirroring the engine emulation.
  bool driving_scan = false;
  std::vector<VarId> head;  ///< kUnionAll, kProject.
  /// kProject: constants for head variables not covered by the child.
  std::vector<std::pair<VarId, ValueId>> bindings;
  /// kUnionAll: the source disjunct of each child, in child order — carries
  /// the per-child head bindings the union applies and lets EXPLAIN print
  /// the term the child chain evaluates.
  std::vector<ConjunctiveQuery> disjuncts;
  /// kUnionAll: the union exceeds the engine profile's plan limit; the plan
  /// is rendered (EXPLAIN must show infeasible plans) but not executable.
  /// Only a sample of the disjuncts is planned as children then, so
  /// `union_terms` (not `children.size()`) is the authoritative term count.
  bool over_limit = false;
  /// kUnionAll: total number of disjuncts of the union.
  size_t union_terms = 0;
  /// kUnionAll: the children are mutually independent disjunct subtrees
  /// (no shared state), so the evaluator may fan them out to a worker pool.
  /// True for every executable union the planner builds — the algebraic
  /// independence of UCQ terms guarantees it — and false for over-limit
  /// unions, which never execute.
  bool parallel_safe = false;
  /// kUnionAll: number of consecutive disjuncts one parallel task evaluates
  /// (a morsel). Sized by the planner from the profile's worker_threads so
  /// large disjunct lists split into several morsels per thread (load
  /// balancing) without per-disjunct task overhead. 0 when parallelism is
  /// off.
  size_t morsel_size = 0;
  /// kDedup: index of the JUCQ component this node is the root of, or -1.
  /// Component roots carry the per-component `engine.ucq` trace span.
  int component = -1;
  /// kHashJoin: joins two component results (traced as `engine.join`)
  /// rather than two relations inside one disjunct (`op.hash_join`).
  bool component_join = false;
  /// kSharedRef: index into PhysicalPlan::shared_subplans of the subplan
  /// this node references. Also set on the shared subplan's own root (its
  /// index), so EXPLAIN and the slow-query log can label both sides.
  int shared_index = -1;
  /// kScanRange: the hid interval scanned, half-open. `atom` holds the
  /// representative pattern (the first collapsed disjunct's atom) whose
  /// masked position — the type-atom object, or the predicate — ranges over
  /// the interval; the variable layout of every collapsed disjunct is
  /// identical by construction (the collapse signature).
  uint32_t range_lo = 0;
  uint32_t range_hi = 0;
  /// kScanRange: true when the interval ranges over class hids (a type-atom
  /// object; scans the type shadow index), false for property hids (a
  /// predicate; scans the property shadow index).
  bool range_class_space = false;
  /// kScanRange: number of union disjuncts this node collapsed.
  size_t range_terms = 0;
  /// kUnionAll: disjunct count before range collapse (equals `union_terms`
  /// when no collapse happened). EXPLAIN prints "collapsed from N".
  size_t pre_collapse_terms = 0;
  /// kViewScan: canonical signature of the component UCQ the view
  /// materializes (ViewSignature). Also stamped on component-root kDedup
  /// nodes when a view resolver is wired, so the executor can offer the
  /// deduplicated component result for admission without recomputing the
  /// signature. Empty otherwise.
  std::string view_signature;
  /// kViewScan: the materialized rows, shared with (and pinned
  /// independently of) the ViewCatalog entry, so a cached plan stays
  /// executable even if the catalog evicts the view mid-epoch. The stored
  /// relation's columns carry the VarIds of the query that populated it;
  /// the executor re-labels them with `out_columns` on read.
  std::shared_ptr<const Relation> view_rows;

  /// Output schema, fixed at plan time; also the column set of the empty
  /// relation produced when a subtree is short-circuited.
  std::vector<VarId> out_columns;

  // --- Estimates (Planner) and actuals (Evaluator) ----------------------
  double est_rows = 0.0;  ///< Estimated output rows.
  double est_cost = 0.0;  ///< Cumulative §4.1-model cost of the subtree.
  size_t actual_rows = 0;
  bool executed = false;  ///< False until the executor produced this node's
                          ///< result (short-circuited nodes stay false).

  // --- Per-operator runtime accounting (Evaluator) ----------------------
  // Written into every executed plan, not just under EXPLAIN ANALYZE: this
  // is the substrate the estimate-feedback store, the slow-query log and the
  // planned eval-cost governor meter against. Compiled out (left at zero)
  // under RDFOPT_DISABLE_NODE_TELEMETRY — the baseline of the overhead
  // benchmark in BENCH_observability.json.
  double actual_ms = 0.0;  ///< Wall time of this node's own execution step,
                           ///< children included (subtree time, like
                           ///< est_cost is subtree cost).
  /// kAtomScan / kIndexJoinAtom: index rows read to produce the output
  /// (before join filtering); kHashJoin: rows consumed from both children.
  size_t rows_scanned = 0;
  /// kIndexJoinAtom: probe lookups issued (one per driving row);
  /// kHashJoin: hash-table probes (rows of the probe side).
  size_t hash_probes = 0;
  /// kMaterializeBarrier: bytes of tuples spooled into the materialized
  /// result (cells × sizeof(ValueId)).
  size_t bytes_materialized = 0;
};

/// Root query shape of a plan; selects the top-level trace span and the
/// EXPLAIN header.
enum class PlanShape { kCq, kUcq, kJucq };

/// A complete physical plan: the tree plus plan-wide metadata.
struct PhysicalPlan {
  std::unique_ptr<PlanNode> root;
  /// Execute-once subplans factored out of union branches (union-subplan
  /// factoring, DESIGN.md §11): the evaluator runs them before the tree and
  /// every kSharedRef node consumes the materialized result by reference.
  /// Their runtime counters are therefore attributed here, once — not per
  /// consuming branch.
  std::vector<std::unique_ptr<PlanNode>> shared_subplans;
  PlanShape shape = PlanShape::kCq;
  /// OK, or kQueryTooComplex when some union exceeds the profile's plan
  /// limit (the plan still renders; executing it returns this status).
  Status feasibility = Status::OK();
  std::string profile_name;
  /// The profile's per-union plan limit the plan was built against (shown
  /// by EXPLAIN next to over-limit unions).
  size_t union_term_limit = 0;
  size_t num_components = 0;  ///< JUCQ component count (1 for CQ/UCQ).
  size_t union_terms = 0;     ///< Total disjuncts across kUnionAll nodes.
  int num_nodes = 0;
  /// Rows per execution batch of the profile the plan was built for (the
  /// EngineProfile::vector_width); EXPLAIN prints it in the header.
  size_t vector_width = 1;

  /// Total estimated cost of the plan (the engine's EXPLAIN estimate).
  double est_cost() const { return root != nullptr ? root->est_cost : 0.0; }

  /// Clears `executed`/`actual_rows` on every node so the plan can be
  /// executed again (plan caching, benchmarks).
  void ResetActuals();

  /// Deep copy of the whole tree, with actuals cleared. Executing a plan
  /// writes `actual_rows`/`executed` into its nodes, so a cached plan shared
  /// between concurrent requests must be cloned per execution; the cached
  /// instance stays an immutable template.
  PhysicalPlan Clone() const;

  /// Depth-first preorder visit of every node: shared subplans first (they
  /// carry the lowest preorder ids and execute first), then the tree. Each
  /// shared subplan is visited once, regardless of how many kSharedRef
  /// nodes consume it.
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    for (const auto& shared : shared_subplans) VisitPre(shared.get(), fn);
    VisitPre(root.get(), fn);
  }

 private:
  template <typename Fn>
  static void VisitPre(const PlanNode* node, Fn& fn) {
    if (node == nullptr) return;
    fn(*node);
    for (const auto& child : node->children) VisitPre(child.get(), fn);
  }
};

/// Stable 64-bit fingerprint of the plan's structure: FNV-1a over the
/// preorder walk of (kind, id, atom terms, union_terms). Identifies a plan
/// shape across clones and processes — the slow-query log and the feedback
/// store key on it, so two executions of the same cached plan correlate.
/// Estimates and actuals are deliberately excluded.
uint64_t PlanDigest(const PhysicalPlan& plan);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_PLAN_H_
