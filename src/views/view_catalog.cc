#include "views/view_catalog.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "service/epoch_guard.h"

namespace rdfopt {

namespace {

/// Registry twins of the catalog's counters, exported under `views.*` for
/// `!prom` / ci/prom_smoke.sh. Cached pointers, per the metrics contract.
struct ViewMetrics {
  MetricCounter* lookups;
  MetricCounter* hits;
  MetricCounter* misses;
  MetricCounter* offers;
  MetricCounter* admitted;
  MetricCounter* rejected;
  MetricCounter* stale_offers;
  MetricCounter* evictions;
  MetricCounter* invalidations;
  MetricCounter* carry_forwards;
  MetricCounter* refreshes;
  MetricCounter* promotions;
  MetricCounter* demotions;
  MetricGauge* bytes;
  MetricGauge* entries;
  MetricGauge* resident;
  MetricGauge* pinned;
};

ViewMetrics& Metrics() {
  static ViewMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    ViewMetrics out;
    out.lookups = r.GetCounter("views.lookups");
    out.hits = r.GetCounter("views.hits");
    out.misses = r.GetCounter("views.misses");
    out.offers = r.GetCounter("views.offers");
    out.admitted = r.GetCounter("views.admitted");
    out.rejected = r.GetCounter("views.rejected");
    out.stale_offers = r.GetCounter("views.stale_offers");
    out.evictions = r.GetCounter("views.evictions");
    out.invalidations = r.GetCounter("views.invalidations");
    out.carry_forwards = r.GetCounter("views.carry_forwards");
    out.refreshes = r.GetCounter("views.refreshes");
    out.promotions = r.GetCounter("views.promotions");
    out.demotions = r.GetCounter("views.demotions");
    out.bytes = r.GetGauge("views.bytes");
    out.entries = r.GetGauge("views.entries");
    out.resident = r.GetGauge("views.resident");
    out.pinned = r.GetGauge("views.pinned");
    return out;
  }();
  return m;
}

/// Does `t` match the (possibly variable-positioned) pattern `atom`?
bool AtomMatchesTriple(const TriplePattern& atom, const Triple& t) {
  return (atom.s.is_var() || atom.s.value() == t.s) &&
         (atom.p.is_var() || atom.p.value() == t.p) &&
         (atom.o.is_var() || atom.o.value() == t.o);
}

/// True iff some delta triple matches some atom of `definition` — the sound
/// (conservative) carry-forward test: the view evaluates against the data
/// store, so a delta matching none of its atom patterns cannot change any
/// disjunct's result.
bool DeltaTouches(const UnionQuery& definition,
                  const std::vector<Triple>& delta) {
  for (const ConjunctiveQuery& disjunct : definition.disjuncts) {
    for (const TriplePattern& atom : disjunct.atoms) {
      for (const Triple& t : delta) {
        if (AtomMatchesTriple(atom, t)) return true;
      }
    }
  }
  return false;
}

size_t MaterializedBytes(const std::string& signature, const Relation& rows) {
  return rows.num_cells() * sizeof(ValueId) + signature.size() +
         sizeof(Relation);
}

}  // namespace

ViewCatalog::ViewCatalog(ViewCatalogOptions options) : options_(options) {
  Metrics();  // Register the views.* instruments eagerly for `!prom`.
}

void ViewCatalog::NoteComponent(const std::string& signature,
                                const UnionQuery& ucq, double est_cost,
                                size_t union_terms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = ledger_.try_emplace(signature);
  Entry& entry = it->second;
  if (inserted) {
    entry.definition = ucq;  // Deep copy: the planner's UCQ is transient.
    entry.union_terms = union_terms;
  }
  // Estimates drift as statistics and feedback evolve; score on the latest.
  entry.est_cost = est_cost;
  ++entry.observations;
  entry.last_note_seq = ++note_seq_;
  if (inserted) BoundLedgerLocked();
  ExportGaugesLocked();
}

std::shared_ptr<const Relation> ViewCatalog::Lookup(
    const std::string& signature, Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.lookups;
  Metrics().lookups->Increment();
  auto it = ledger_.find(signature);
  if (it == ledger_.end() || it->second.rows == nullptr ||
      it->second.epoch != epoch) {
    ++counters_.misses;
    Metrics().misses->Increment();
    return nullptr;
  }
  Entry& entry = it->second;
  ++counters_.hits;
  Metrics().hits->Increment();
  ++entry.hits;
  if (!entry.pinned) lru_.splice(lru_.begin(), lru_, entry.lru_it);
  return entry.rows;
}

void ViewCatalog::Offer(const std::string& signature, const Relation& rows,
                        Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.offers;
  Metrics().offers->Increment();
  auto it = ledger_.find(signature);
  if (it == ledger_.end()) {
    // Never announced by the planner (e.g. the ledger bound evicted the
    // observation between planning and execution): nothing to attach to.
    ++counters_.rejected;
    Metrics().rejected->Increment();
    return;
  }
  Entry& entry = it->second;
  if (!EpochWriteAdmissible(epoch, epoch_)) {
    // The off-by-one race: this result was computed on a snapshot the
    // catalog has already moved past (or has not adopted yet).
    ++counters_.stale_offers;
    Metrics().stale_offers->Increment();
    return;
  }
  if (entry.rows != nullptr && entry.epoch == epoch) return;  // Duplicate.
  const size_t bytes = MaterializedBytes(signature, rows);
  if (rows.arity() == 0 || bytes > options_.byte_budget) {
    // Zero-arity (boolean) fragments are not worth a catalog slot; oversized
    // results would evict everything else for one entry.
    ++counters_.rejected;
    Metrics().rejected->Increment();
    return;
  }
  if (entry.rows != nullptr) DropRowsLocked(&entry, &counters_.evictions);
  if (!MakeRoomLocked(bytes)) {
    ++counters_.rejected;
    Metrics().rejected->Increment();
    ExportGaugesLocked();
    return;
  }
  AdmitLocked(signature, &entry,
              std::make_shared<const Relation>(rows.Copy()), bytes, epoch);
  ExportGaugesLocked();
}

std::vector<ViewCatalog::RefreshTask> ViewCatalog::BeginEpoch(
    Epoch new_epoch, const std::vector<Triple>& delta,
    bool delta_is_complete) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = new_epoch;
  std::vector<RefreshTask> tasks;
  for (auto& [signature, entry] : ledger_) {
    if (!entry.pinned) {
      // Unpinned materializations are opportunistic: their epoch stamp makes
      // them unreachable under the new epoch, so reclaim the budget eagerly.
      if (entry.rows != nullptr) {
        DropRowsLocked(&entry, &counters_.invalidations);
      }
      continue;
    }
    if (entry.rows != nullptr && delta_is_complete &&
        !DeltaTouches(entry.definition, delta)) {
      // Data-only epoch that provably leaves this view unchanged: adopt the
      // rows under the new epoch without touching them.
      entry.epoch = new_epoch;
      ++counters_.carry_forwards;
      Metrics().carry_forwards->Increment();
      continue;
    }
    if (entry.rows != nullptr) {
      DropRowsLocked(&entry, &counters_.invalidations);
    }
    tasks.push_back(RefreshTask{signature, entry.definition});
  }
  // Sorted so maintenance (and its metrics) is deterministic across runs.
  std::sort(tasks.begin(), tasks.end(),
            [](const RefreshTask& a, const RefreshTask& b) {
              return a.signature < b.signature;
            });
  ExportGaugesLocked();
  return tasks;
}

void ViewCatalog::InstallPinned(const std::string& signature, Relation rows,
                                Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(signature);
  if (it == ledger_.end()) return;  // Dropped while re-materializing.
  Entry& entry = it->second;
  if (!EpochWriteAdmissible(epoch, epoch_)) {
    // Another update raced the refresh; its own BeginEpoch re-issued the
    // task, so this stale result is simply discarded.
    ++counters_.stale_offers;
    Metrics().stale_offers->Increment();
    return;
  }
  const size_t bytes = MaterializedBytes(signature, rows);
  if (rows.arity() == 0 || bytes > options_.byte_budget) {
    ++counters_.rejected;
    Metrics().rejected->Increment();
    return;
  }
  if (entry.rows != nullptr) DropRowsLocked(&entry, &counters_.evictions);
  if (!MakeRoomLocked(bytes)) {
    // Pinned residue alone exceeds the budget: leave the view non-resident;
    // the next advisor pass will rebalance the pin set.
    ++counters_.rejected;
    Metrics().rejected->Increment();
    ExportGaugesLocked();
    return;
  }
  AdmitLocked(signature, &entry,
              std::make_shared<const Relation>(std::move(rows)), bytes, epoch);
  ++counters_.refreshes;
  Metrics().refreshes->Increment();
  ExportGaugesLocked();
}

void ViewCatalog::Drop(const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(signature);
  if (it == ledger_.end()) return;
  if (it->second.rows != nullptr) {
    DropRowsLocked(&it->second, &counters_.evictions);
  }
  ledger_.erase(it);
  ExportGaugesLocked();
}

bool ViewCatalog::SetPinned(const std::string& signature, bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(signature);
  if (it == ledger_.end()) return false;
  Entry& entry = it->second;
  if (entry.pinned == pinned) return true;
  if (pinned) {
    if (entry.rows != nullptr) lru_.erase(entry.lru_it);
    ++counters_.promotions;
    Metrics().promotions->Increment();
  } else {
    if (entry.rows != nullptr) {
      lru_.push_front(signature);
      entry.lru_it = lru_.begin();
    }
    ++counters_.demotions;
    Metrics().demotions->Increment();
  }
  entry.pinned = pinned;
  ExportGaugesLocked();
  return true;
}

std::vector<ViewInfo> ViewCatalog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ViewInfo> out;
  out.reserve(ledger_.size());
  for (const auto& [signature, entry] : ledger_) {
    ViewInfo info;
    info.signature = signature;
    info.pinned = entry.pinned;
    info.resident = entry.rows != nullptr;
    info.epoch = entry.epoch;
    info.bytes = entry.bytes;
    info.rows = entry.rows != nullptr ? entry.rows->num_rows() : 0;
    info.observations = entry.observations;
    info.hits = entry.hits;
    info.est_cost = entry.est_cost;
    info.union_terms = entry.union_terms;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(), [](const ViewInfo& a, const ViewInfo& b) {
    return a.signature < b.signature;
  });
  return out;
}

ViewCatalogStats ViewCatalog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ViewCatalogStats s = counters_;
  s.bytes = bytes_;
  s.entries = ledger_.size();
  s.resident = 0;
  s.pinned = 0;
  for (const auto& [signature, entry] : ledger_) {
    if (entry.rows != nullptr) ++s.resident;
    if (entry.pinned) ++s.pinned;
  }
  return s;
}

Epoch ViewCatalog::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void ViewCatalog::DropRowsLocked(Entry* entry, uint64_t* counter) {
  if (!entry->pinned) lru_.erase(entry->lru_it);
  bytes_ -= entry->bytes;
  entry->bytes = 0;
  entry->rows.reset();
  ++*counter;
  if (counter == &counters_.evictions) {
    Metrics().evictions->Increment();
  } else {
    Metrics().invalidations->Increment();
  }
}

bool ViewCatalog::MakeRoomLocked(size_t needed) {
  while (bytes_ + needed > options_.byte_budget && !lru_.empty()) {
    auto it = ledger_.find(lru_.back());
    DropRowsLocked(&it->second, &counters_.evictions);
  }
  return bytes_ + needed <= options_.byte_budget;
}

void ViewCatalog::AdmitLocked(const std::string& signature, Entry* entry,
                              std::shared_ptr<const Relation> rows,
                              size_t bytes, Epoch epoch) {
  entry->rows = std::move(rows);
  entry->epoch = epoch;
  entry->bytes = bytes;
  bytes_ += bytes;
  if (!entry->pinned) {
    lru_.push_front(signature);
    entry->lru_it = lru_.begin();
  }
  ++counters_.admitted;
  Metrics().admitted->Increment();
}

void ViewCatalog::BoundLedgerLocked() {
  if (ledger_.size() <= options_.max_ledger_entries) return;
  // Evict the coldest observation that holds no rows and no pin; if every
  // entry is resident or pinned the ledger may overflow (the byte budget
  // bounds those).
  auto victim = ledger_.end();
  for (auto it = ledger_.begin(); it != ledger_.end(); ++it) {
    if (it->second.rows != nullptr || it->second.pinned) continue;
    if (victim == ledger_.end() ||
        it->second.last_note_seq < victim->second.last_note_seq) {
      victim = it;
    }
  }
  if (victim != ledger_.end()) ledger_.erase(victim);
}

void ViewCatalog::ExportGaugesLocked() {
  size_t resident = 0;
  size_t pinned = 0;
  for (const auto& [signature, entry] : ledger_) {
    if (entry.rows != nullptr) ++resident;
    if (entry.pinned) ++pinned;
  }
  Metrics().bytes->Set(static_cast<int64_t>(bytes_));
  Metrics().entries->Set(static_cast<int64_t>(ledger_.size()));
  Metrics().resident->Set(static_cast<int64_t>(resident));
  Metrics().pinned->Set(static_cast<int64_t>(pinned));
}

}  // namespace rdfopt
