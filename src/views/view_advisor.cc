#include "views/view_advisor.h"

#include <algorithm>
#include <vector>

namespace rdfopt {

ViewAdvisor::ViewAdvisor(ViewAdvisorOptions options) : options_(options) {}

double ViewAdvisor::Score(const ViewInfo& info) {
  return static_cast<double>(info.observations) * info.est_cost /
         static_cast<double>(info.bytes + 1);
}

ViewAdvisor::PassResult ViewAdvisor::RunPass(ViewCatalog* catalog) const {
  PassResult result;
  std::vector<ViewInfo> entries = catalog->Entries();

  // Candidates: resident fragments clearing the observation floor, best
  // score first (signature-ordered input makes ties deterministic).
  std::vector<const ViewInfo*> candidates;
  for (const ViewInfo& info : entries) {
    if (!info.resident) continue;
    ++result.considered;
    if (info.observations < options_.min_observations) continue;
    candidates.push_back(&info);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ViewInfo* a, const ViewInfo* b) {
                     return Score(*a) > Score(*b);
                   });
  if (candidates.size() > options_.pin_limit) {
    candidates.resize(options_.pin_limit);
  }

  for (const ViewInfo& info : entries) {
    const bool should_pin =
        std::find_if(candidates.begin(), candidates.end(),
                     [&](const ViewInfo* c) {
                       return c->signature == info.signature;
                     }) != candidates.end();
    if (should_pin == info.pinned) continue;
    // SetPinned can miss if the entry was dropped since Entries(); such a
    // lost decision simply waits for the next pass.
    if (!catalog->SetPinned(info.signature, should_pin)) continue;
    if (should_pin) {
      ++result.promoted;
    } else {
      ++result.demoted;
    }
  }
  return result;
}

}  // namespace rdfopt
