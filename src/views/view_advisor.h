#ifndef RDFOPT_VIEWS_VIEW_ADVISOR_H_
#define RDFOPT_VIEWS_VIEW_ADVISOR_H_

#include <cstddef>
#include <cstdint>

#include "views/view_catalog.h"

namespace rdfopt {

struct ViewAdvisorOptions {
  /// Ceiling on concurrently pinned views. Pinned views survive LRU
  /// pressure and are maintained across epochs, so each one is a standing
  /// maintenance obligation — the limit keeps that bill bounded.
  size_t pin_limit = 8;
  /// A fragment must have been planned this often before it can be pinned:
  /// fewer observations are indistinguishable from one-off queries.
  uint64_t min_observations = 3;
};

/// The log-mining half of the materialized-view subsystem (DESIGN.md §14).
///
/// The catalog's ledger *is* the mined query log: every planned component
/// deposits an observation (signature, frequency, latest cost estimate), the
/// same stream the slow-query log samples, without re-parsing anything. A
/// pass ranks resident fragments by expected benefit per byte —
///
///     score = observations × est_cost / (bytes + 1)
///
/// observations × est_cost is the execution cost the view keeps saving if
/// the workload continues (frequency × benefit); bytes is what it costs to
/// keep; the +1 guards empty results. The top `pin_limit` fragments clearing
/// `min_observations` become pinned (promoted); pinned fragments falling out
/// of that set are demoted back to LRU citizenship. Only resident fragments
/// are considered: admission already proved they fit, and their byte size is
/// known rather than estimated.
///
/// Deterministic: ties break on signature order, so tests and repeated
/// passes over an unchanged ledger are stable (and idempotent).
class ViewAdvisor {
 public:
  explicit ViewAdvisor(ViewAdvisorOptions options = {});

  struct PassResult {
    size_t considered = 0;  ///< Resident fragments scored.
    size_t promoted = 0;
    size_t demoted = 0;
  };

  /// One scoring pass over `catalog`'s ledger. Thread-safe via the
  /// catalog's own locking; concurrent passes are harmless (idempotent).
  PassResult RunPass(ViewCatalog* catalog) const;

  /// The scoring function, exposed for tests and the `.views stats` surface.
  static double Score(const ViewInfo& info);

 private:
  const ViewAdvisorOptions options_;
};

}  // namespace rdfopt

#endif  // RDFOPT_VIEWS_VIEW_ADVISOR_H_
