#ifndef RDFOPT_VIEWS_VIEW_CATALOG_H_
#define RDFOPT_VIEWS_VIEW_CATALOG_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/relation.h"
#include "engine/view_resolver.h"
#include "rdf/triple.h"
#include "sparql/query.h"
#include "storage/epoch.h"

namespace rdfopt {

struct ViewCatalogOptions {
  /// Byte budget of materialized rows (pinned + unpinned). Offers that would
  /// not fit after evicting every unpinned entry are rejected.
  size_t byte_budget = 16ull << 20;
  /// Cap on the observation ledger (entries with or without rows). When
  /// full, the coldest non-resident unpinned entry makes room.
  size_t max_ledger_entries = 1024;
};

/// Per-view row of the catalog listing (shell `.views stats`, server
/// `!views`, and the advisor's scoring input).
struct ViewInfo {
  std::string signature;
  bool pinned = false;
  bool resident = false;  ///< Rows materialized for the current epoch.
  Epoch epoch = 0;        ///< Epoch of the materialized rows (if resident).
  size_t bytes = 0;
  size_t rows = 0;
  uint64_t observations = 0;  ///< Times the planner noted this fragment.
  uint64_t hits = 0;          ///< Lookups served from materialized rows.
  double est_cost = 0.0;      ///< Planner's cost of computing the fragment.
  size_t union_terms = 0;     ///< Reformulation terms the view stands for.
};

/// Counter snapshot for QueryService::Stats and the text surfaces. The same
/// totals are exported continuously as `views.*` registry metrics.
struct ViewCatalogStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t offers = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;     ///< Offers refused (unnoted, too big, arity 0).
  uint64_t stale_offers = 0; ///< Offers dropped by the epoch write guard.
  uint64_t evictions = 0;
  uint64_t invalidations = 0;   ///< Materializations dropped at epoch bumps.
  uint64_t carry_forwards = 0;  ///< Pinned views untouched by a data delta.
  uint64_t refreshes = 0;       ///< Pinned views re-materialized.
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  size_t bytes = 0;
  size_t entries = 0;   ///< Ledger size (with or without rows).
  size_t resident = 0;  ///< Entries with materialized rows.
  size_t pinned = 0;
};

/// The fragment-result store of the materialized-view subsystem
/// (DESIGN.md §14): maps ViewSignatures of executable UCQ components to
/// their deduplicated result relations, plus the observation ledger the
/// advisor scores.
///
/// Two tiers share one byte budget:
///  - *unpinned* entries are admitted opportunistically (Offer) from results
///    the executor computed anyway, live on an LRU list, and are dropped
///    wholesale at every epoch bump — they cost nothing to lose;
///  - *pinned* entries (advisor promotions) are never evicted by the LRU and
///    are maintained across epochs: BeginEpoch carries them forward when the
///    data delta provably cannot change them, otherwise hands them back to
///    the caller for re-materialization against the new snapshot.
///
/// Epoch discipline: rows are stamped with the epoch of the snapshot they
/// were computed from; Lookup only returns rows whose stamp matches the
/// requesting snapshot's epoch, and Offer funnels through the shared
/// EpochWriteAdmissible guard (service/epoch_guard.h) so a result computed
/// on a stale pinned snapshot can never be published into the new epoch.
///
/// Thread-safe (one mutex; all methods may race). The engine talks to it
/// through per-request EpochViewResolver adapters, never directly.
class ViewCatalog {
 public:
  explicit ViewCatalog(ViewCatalogOptions options = {});

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// ViewResolver core; Lookup and Offer take the caller's snapshot epoch
  /// explicitly. Observations are epoch-free — the ledger is the advisor's
  /// long-run frequency signal and survives epoch bumps.
  void NoteComponent(const std::string& signature, const UnionQuery& ucq,
                     double est_cost, size_t union_terms);
  std::shared_ptr<const Relation> Lookup(const std::string& signature,
                                         Epoch epoch);
  void Offer(const std::string& signature, const Relation& rows, Epoch epoch);

  /// One pinned view due for re-materialization after an epoch change.
  struct RefreshTask {
    std::string signature;
    UnionQuery definition;
  };

  /// Moves the catalog to `new_epoch`: drops every unpinned materialization
  /// (their epoch stamp makes them unreachable anyway; dropping reclaims the
  /// budget eagerly) and triages pinned views. With `delta_is_complete`, a
  /// pinned view whose atoms match no delta triple carries forward (its
  /// result provably cannot have changed — the engine evaluates views
  /// against the data store, whose new content is exactly old ∪ delta);
  /// all others are returned for the caller to re-execute against the new
  /// snapshot and InstallPinned. Schema epochs pass `delta_is_complete =
  /// false`, forcing a wholesale refresh.
  std::vector<RefreshTask> BeginEpoch(Epoch new_epoch,
                                      const std::vector<Triple>& delta,
                                      bool delta_is_complete);

  /// Installs re-materialized rows for a pinned view (the maintenance path
  /// completing a RefreshTask). Unlike Offer, does not require a fresh
  /// observation and evicts unpinned entries to make room.
  void InstallPinned(const std::string& signature, Relation rows, Epoch epoch);

  /// Removes a view from the catalog entirely (e.g. its re-materialization
  /// failed). No-op for unknown signatures.
  void Drop(const std::string& signature);

  /// Pins or unpins. Pinning removes the entry from the LRU; unpinning a
  /// resident entry re-enters it as most-recently-used (and subject to the
  /// budget again, which may evict it on the next admission). Returns false
  /// for unknown signatures.
  bool SetPinned(const std::string& signature, bool pinned);

  /// Ledger listing, signature-sorted (deterministic for tests and text
  /// surfaces).
  std::vector<ViewInfo> Entries() const;

  ViewCatalogStats stats() const;
  Epoch current_epoch() const;

 private:
  struct Entry {
    UnionQuery definition;  ///< Copied on first NoteComponent.
    std::shared_ptr<const Relation> rows;  ///< Null until admitted.
    Epoch epoch = 0;
    size_t bytes = 0;
    double est_cost = 0.0;
    size_t union_terms = 0;
    uint64_t observations = 0;
    uint64_t hits = 0;
    uint64_t last_note_seq = 0;  ///< Recency for ledger eviction.
    bool pinned = false;
    /// Position in lru_; valid iff resident and unpinned.
    std::list<std::string>::iterator lru_it;
  };

  /// Drops `entry`'s materialization (rows + LRU membership + bytes).
  /// `counted_as` names the counter bucket: eviction vs invalidation.
  void DropRowsLocked(Entry* entry, uint64_t* counter);
  /// Evicts LRU-coldest unpinned entries until `needed` more bytes fit
  /// under the budget; returns false if they cannot (pinned residue).
  bool MakeRoomLocked(size_t needed);
  /// Admits `rows` into `entry` (budget already reserved by the caller).
  void AdmitLocked(const std::string& signature, Entry* entry,
                   std::shared_ptr<const Relation> rows, size_t bytes,
                   Epoch epoch);
  void BoundLedgerLocked();
  void ExportGaugesLocked();

  const ViewCatalogOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> ledger_;
  /// Resident unpinned signatures, most-recently-used first.
  std::list<std::string> lru_;
  Epoch epoch_ = 0;
  size_t bytes_ = 0;
  uint64_t note_seq_ = 0;
  ViewCatalogStats counters_;
};

/// Per-request ViewResolver adapter binding the catalog to the epoch of the
/// snapshot the request pinned at admission. Stack-allocated next to the
/// request's Evaluator; this is what makes the off-by-one epoch race
/// testable and safe — a request that outlives an update keeps offering
/// under its old epoch and the catalog's write guard rejects it.
class EpochViewResolver : public ViewResolver {
 public:
  EpochViewResolver(ViewCatalog* catalog, Epoch epoch)
      : catalog_(catalog), epoch_(epoch) {}

  void NoteComponent(const std::string& signature, const UnionQuery& ucq,
                     double est_cost, size_t union_terms) override {
    catalog_->NoteComponent(signature, ucq, est_cost, union_terms);
  }
  std::shared_ptr<const Relation> Lookup(
      const std::string& signature) override {
    return catalog_->Lookup(signature, epoch_);
  }
  void Offer(const std::string& signature, const Relation& rows) override {
    catalog_->Offer(signature, rows, epoch_);
  }

 private:
  ViewCatalog* const catalog_;
  const Epoch epoch_;
};

}  // namespace rdfopt

#endif  // RDFOPT_VIEWS_VIEW_CATALOG_H_
