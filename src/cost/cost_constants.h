#ifndef RDFOPT_COST_COST_CONSTANTS_H_
#define RDFOPT_COST_COST_CONSTANTS_H_

namespace rdfopt {

/// The system-dependent constants of the paper's cost model (§4.1),
/// "determined by running a set of simple calibration queries" per engine.
/// Units are abstract cost units; with the defaults below one unit is
/// roughly one microsecond on the reference engine profile.
struct CostConstants {
  /// Fixed overhead of issuing a query to the engine (c_db).
  double c_db = 50.0;
  /// Per-tuple scan cost (c_t): retrieving one tuple from an index.
  double c_t = 0.02;
  /// Per-input-tuple join cost (c_j): hash/merge joins are linear in the
  /// total size of their inputs.
  double c_j = 0.03;
  /// Per-tuple materialization cost (c_m) for stored intermediates.
  double c_m = 0.05;
  /// Per-tuple duplicate-elimination cost, in-memory hashing regime (c_l).
  double c_l = 0.04;
  /// Per-tuple-log-tuple duplicate-elimination cost, external-sort regime
  /// (c_k).
  double c_k = 0.01;
  /// Result size (tuples) beyond which duplicate elimination is costed in
  /// the external-sort regime.
  double dedup_spill_rows = 4e6;
  /// Fixed overhead of each UNION branch (plan-node setup); this is what
  /// makes huge UCQs expensive even when each branch is empty.
  double c_union_term = 2.0;
  /// Per-tuple cost of a hierarchy interval scan (c_r): reading one tuple
  /// from the hid-ordered shadow index (DESIGN.md §12). Same order as c_t —
  /// both are sequential index reads — but charged once per range instead of
  /// once per collapsed branch, which is where the win comes from.
  double c_r = 0.02;
};

}  // namespace rdfopt

#endif  // RDFOPT_COST_COST_CONSTANTS_H_
