#ifndef RDFOPT_COST_COST_MODEL_H_
#define RDFOPT_COST_COST_MODEL_H_

#include <vector>

#include "cost/cardinality.h"
#include "cost/cost_constants.h"
#include "sparql/query.h"

namespace rdfopt {

class HierarchyEncoding;

/// Aggregates of one (reformulated) UCQ consumed by the cost formulas.
/// The paper's model is linear in per-atom scan cardinalities, so these
/// three numbers summarize a UCQ completely for costing purposes.
struct UcqCostInputs {
  /// Number of disjuncts (union terms).
  size_t num_disjuncts = 0;
  /// Estimated engine work (rows through operators) summed over disjuncts.
  /// The paper's eq. (2) uses the raw per-triple cardinalities
  /// Σ_CQ Σ_t |CQ{t}| here; we substitute the plan-aware
  /// CardinalityEstimator::EstimateCqPlanWork because our engine (like the
  /// paper's RDBMSs) evaluates each disjunct with index nested-loop joins,
  /// so its work is driven by the selective atoms, not by the sum of all
  /// pattern sizes. The formula structure is unchanged.
  double scan_sum = 0.0;
  /// Estimated result rows of the UCQ (duplicate-inclusive).
  double est_result = 0.0;
};

/// The paper's cost model (§4.1) for evaluating a JUCQ through an engine:
///
///   c(q_JUCQ) = c_db
///             + Σ_i [ c_eval(U_i) + c_unique(U_i) ]
///             + c_join(U_1..U_m) + c_mat(all but the largest U_k)
///             + c_unique(q_JUCQ)
///
/// with c_eval(U) = (c_t + c_j) · work(U) (eqs. 1-2, work as defined at
/// UcqCostInputs::scan_sum), c_join linear in the sizes of its inputs — the
/// estimated component results (eq. 3), c_mat = c_m times the estimated
/// results of the materialized components (eq. 4), and duplicate
/// elimination costed c_l·n in the hashing regime or c_k·n·log n once
/// results spill (the paper's two c_unique regimes).
///
/// One extension over the literal formulas: a per-union-term overhead
/// (c_union_term · #disjuncts), reflecting per-subplan setup cost. The
/// paper's engines exhibit exactly this behaviour (huge UCQs are expensive
/// even when most disjuncts return nothing) and our profiles emulate it
/// physically, so the calibrated model must see it too.
class PaperCostModel {
 public:
  explicit PaperCostModel(const CostConstants& constants)
      : k_(constants) {}

  /// Duplicate-elimination cost of a result of `rows` tuples.
  double UniqueCost(double rows) const;

  /// c_eval(U) + c_unique(U) + per-term overhead for one component.
  double UcqCost(const UcqCostInputs& ucq) const;

  /// Full JUCQ cost. `est_final_rows` is the estimated size of the joined
  /// result (for the final c_unique). The component with the largest
  /// estimated result is assumed pipelined (§4.1(v)).
  double JucqCost(const std::vector<UcqCostInputs>& components,
                  double est_final_rows) const;

  const CostConstants& constants() const { return k_; }

 private:
  const CostConstants k_;
};

/// Computes the aggregates of a materialized UCQ: plan-aware per-disjunct
/// work, result estimate via EstimateUCQ.
UcqCostInputs ComputeUcqCostInputs(const UnionQuery& ucq,
                                   const CardinalityEstimator& estimator);

/// Hierarchy-aware variant (DESIGN.md §12): when `encoding` is non-null,
/// `num_disjuncts` becomes the post-collapse term count of the same
/// AnalyzeRangeCollapse decomposition the planner executes — each collapsed
/// range is one term — so the c_union_term charge prices the plan the
/// engine will actually run. `scan_sum` is unchanged: a range scan reads
/// exactly the rows its member scans would (the win is per-term overhead,
/// not per-tuple work). Null `encoding` degrades to the plain variant.
UcqCostInputs ComputeUcqCostInputs(const UnionQuery& ucq,
                                   const CardinalityEstimator& estimator,
                                   const HierarchyEncoding* encoding);

/// Ablation variant: scan_sum is the literal eq. (2) measure — the sum of
/// the per-triple cardinalities Σ_CQ Σ_t |CQ{t}| — instead of the
/// plan-aware work. Used to quantify the deviation documented in DESIGN.md.
UcqCostInputs ComputeUcqCostInputsLiteral(
    const UnionQuery& ucq, const CardinalityEstimator& estimator);

}  // namespace rdfopt

#endif  // RDFOPT_COST_COST_MODEL_H_
