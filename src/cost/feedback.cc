#include "cost/feedback.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/metrics.h"
#include "engine/plan.h"

namespace rdfopt {

namespace {

/// `numbering` null: variables render as the blind placeholder "?" (the
/// sort key); otherwise as their canonical number.
std::string TermKey(const PatternTerm& t,
                    const std::unordered_map<VarId, size_t>* numbering) {
  if (!t.is_var()) return "c" + std::to_string(t.value());
  if (numbering == nullptr) return "?";
  return "v" + std::to_string(numbering->at(t.var()));
}

std::string AtomKey(const TriplePattern& atom,
                    const std::unordered_map<VarId, size_t>* numbering) {
  return "(" + TermKey(atom.s, numbering) + "," + TermKey(atom.p, numbering) +
         "," + TermKey(atom.o, numbering) + ")";
}

}  // namespace

std::string FragmentSignature(const ConjunctiveQuery& cq) {
  // 1. Order atoms by their variable-blind serialization: atom order in the
  //    query must not matter, and variable ids cannot take part yet.
  std::vector<size_t> order(cq.atoms.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<std::string> blind(cq.atoms.size());
  for (size_t i = 0; i < cq.atoms.size(); ++i) {
    blind[i] = AtomKey(cq.atoms[i], nullptr);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return blind[a] < blind[b];
  });

  // 2. Renumber variables by first occurrence along the sorted order, which
  //    erases the query's own VarIds (α-renaming invariance; atoms whose
  //    blind keys tie keep a stable order, so the rare ambiguous case is at
  //    least deterministic per input).
  std::unordered_map<VarId, size_t> numbering;
  for (size_t idx : order) {
    const TriplePattern& atom = cq.atoms[idx];
    for (const PatternTerm* t : {&atom.s, &atom.p, &atom.o}) {
      if (t->is_var() && numbering.find(t->var()) == numbering.end()) {
        numbering.emplace(t->var(), numbering.size());
      }
    }
  }

  // 3. Serialize with canonical numbers and sort once more so the final
  //    string is independent of residual ordering freedom.
  std::vector<std::string> keys;
  keys.reserve(cq.atoms.size());
  for (size_t idx : order) keys.push_back(AtomKey(cq.atoms[idx], &numbering));
  std::sort(keys.begin(), keys.end());
  std::string signature;
  for (const std::string& key : keys) {
    if (!signature.empty()) signature += ";";
    signature += key;
  }
  return signature;
}

std::string ViewSignature(const UnionQuery& ucq) {
  std::string signature = "h" + std::to_string(ucq.head.size());
  for (const ConjunctiveQuery& d : ucq.disjuncts) {
    signature += "|";
    // Per-disjunct canonical numbering: the UCQ head variables first (in
    // head order — they are the view's column layout), then the disjunct's
    // remaining variables by first occurrence in query order. No sorting
    // anywhere: atom order is part of the key.
    std::unordered_map<VarId, size_t> numbering;
    auto number = [&numbering](const PatternTerm& t) {
      if (t.is_var() && numbering.find(t.var()) == numbering.end()) {
        numbering.emplace(t.var(), numbering.size());
      }
    };
    for (VarId v : ucq.head) number(PatternTerm::Var(v));
    for (VarId v : d.head) number(PatternTerm::Var(v));
    for (const TriplePattern& atom : d.atoms) {
      number(atom.s);
      number(atom.p);
      number(atom.o);
    }
    for (const auto& [var, value] : d.head_bindings) {
      number(PatternTerm::Var(var));
      (void)value;
    }
    for (size_t i = 0; i < d.head.size(); ++i) {
      signature += (i == 0 ? "" : ",");
      signature += "v" + std::to_string(numbering.at(d.head[i]));
    }
    signature += ":";
    for (size_t i = 0; i < d.atoms.size(); ++i) {
      if (i != 0) signature += ";";
      signature += AtomKey(d.atoms[i], &numbering);
    }
    // Bindings are a var→constant map; their list order does not affect
    // projection, so sort them for a canonical rendering.
    std::vector<std::pair<size_t, ValueId>> bindings;
    bindings.reserve(d.head_bindings.size());
    for (const auto& [var, value] : d.head_bindings) {
      bindings.emplace_back(numbering.at(var), value);
    }
    std::sort(bindings.begin(), bindings.end());
    for (const auto& [var, value] : bindings) {
      signature += "!v" + std::to_string(var) + "=" + std::to_string(value);
    }
  }
  return signature;
}

void EstimateFeedbackStore::Record(const ConjunctiveQuery& cq,
                                   double estimated_rows, size_t actual_rows) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static MetricCounter* records =
      registry.GetCounter("cost.feedback_records");
  static MetricCounter* evictions =
      registry.GetCounter("cost.feedback_evictions");
  // Folded estimate-error ratio: 1.0 = exact, 10.0 = one order of magnitude
  // off in either direction. +1 smoothing keeps zero-row fragments finite.
  static MetricHistogram* drift =
      registry.GetHistogram("cost.estimate_drift");

  if (estimated_rows < 0.0) estimated_rows = 0.0;
  const double ratio =
      (estimated_rows + 1.0) / (static_cast<double>(actual_rows) + 1.0);
  drift->Observe(std::max(ratio, 1.0 / ratio));
  records->Increment();

  std::string signature = FragmentSignature(cq);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    while (entries_.size() >= options_.max_entries &&
           !insertion_order_.empty()) {
      entries_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      evictions->Increment();
    }
    Entry entry;
    entry.observed_rows = static_cast<double>(actual_rows);
    entry.last_estimate = estimated_rows;
    entry.observations = 1;
    insertion_order_.push_back(signature);
    entries_.emplace(std::move(signature), entry);
    return;
  }
  Entry& entry = it->second;
  entry.observed_rows = options_.ewma_alpha * static_cast<double>(actual_rows) +
                        (1.0 - options_.ewma_alpha) * entry.observed_rows;
  entry.last_estimate = estimated_rows;
  ++entry.observations;
}

std::optional<double> EstimateFeedbackStore::Lookup(
    const ConjunctiveQuery& cq) const {
  return LookupSignature(FragmentSignature(cq));
}

std::optional<double> EstimateFeedbackStore::LookupSignature(
    const std::string& signature) const {
  static MetricCounter* hits =
      MetricsRegistry::Global().GetCounter("cost.feedback_hits");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(signature);
  if (it == entries_.end()) return std::nullopt;
  hits->Increment();
  return it->second.observed_rows;
}

void EstimateFeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

size_t EstimateFeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, EstimateFeedbackStore::Entry>>
EstimateFeedbackStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

void RecordPlanFeedback(const PhysicalPlan& plan,
                        EstimateFeedbackStore* store) {
  if (store == nullptr) return;
  plan.ForEachNode([store](const PlanNode& node) {
    if (node.kind != PlanNodeKind::kUnionAll) return;
    // disjuncts[i] is the source CQ of children[i] (planner invariant); an
    // over-limit union plans only a sample, so sizes can differ — skip it.
    if (node.disjuncts.size() != node.children.size()) return;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode* child = node.children[i].get();
      if (!child->executed) continue;  // Short-circuited: no observation.
      store->Record(node.disjuncts[i], child->est_rows, child->actual_rows);
    }
  });
}

}  // namespace rdfopt
