#ifndef RDFOPT_COST_CARDINALITY_H_
#define RDFOPT_COST_CARDINALITY_H_

#include <vector>

#include "sparql/query.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"

namespace rdfopt {

class EstimateFeedbackStore;

/// Cardinality estimation for triple patterns, CQs, UCQs and joins of
/// estimated inputs; the statistical backbone of both the paper's cost model
/// (§4.1) and the engine's internal one (Fig 9).
///
/// Estimation model:
///  * single patterns: exact counts via the store's permutation indexes
///    (the paper's per-triple statistics, Tables 1/3, are exact);
///  * conjunctions: System-R style — the product of atom cardinalities
///    scaled, for each join variable, by 1/d for every occurrence beyond the
///    first, where d is the largest distinct-value count of that variable
///    among its occurrences (attribute-independence and containment-of-value
///    assumptions);
///  * unions: the sum of disjunct estimates capped by an estimate of the
///    distinct result (duplicate elimination happens under set semantics).
class CardinalityEstimator {
 public:
  /// Both pointees must outlive the estimator.
  CardinalityEstimator(const TripleStore* store, const Statistics* stats)
      : store_(store), stats_(stats) {}

  /// Wires runtime estimate feedback (cost/feedback.h) into EstimateCQ:
  /// a conjunction whose fragment signature has an observed cardinality
  /// uses it instead of the System-R formula, so repeated misestimates
  /// self-correct. Opt-in and off by default — paper-reproduction runs and
  /// golden plans must not depend on execution history. Null disables.
  /// The pointee must outlive the estimator.
  void set_feedback(const EstimateFeedbackStore* feedback) {
    feedback_ = feedback;
  }
  const EstimateFeedbackStore* feedback() const { return feedback_; }

  /// The store estimates are computed against. The planner reads its
  /// attached HierarchyEncoding (if any) for range collapse, and prices
  /// kScanRange nodes with the store's exact O(1) hid-range counts.
  const TripleStore* store() const { return store_; }

  /// Exact number of triples matching the atom's constant positions
  /// (ignoring repeated-variable filters, which only shrink the result).
  double EstimateAtom(const TriplePattern& atom) const;

  /// Estimated distinct-value count of variable `v` within the scan of
  /// `atom`; the d of the join formula above.
  double EstimateDistinct(const TriplePattern& atom, VarId v) const;

  /// Estimated result rows of the conjunction (before head projection).
  double EstimateCQ(const ConjunctiveQuery& cq) const;

  /// Estimated result rows of the UCQ after duplicate elimination.
  double EstimateUCQ(const UnionQuery& ucq) const;

  /// Estimated rows of joining already-estimated relations: inputs are
  /// (estimated rows, columns); the same per-variable scaling as EstimateCQ
  /// with d approximated by the smaller input's rows.
  double EstimateJoin(
      const std::vector<std::pair<double, std::vector<VarId>>>& inputs) const;

  /// Estimated engine work (rows flowing through operators) to evaluate the
  /// conjunction with the greedy plan the evaluator uses: the first (and
  /// smallest) atom is scanned, every further atom is index-probed from the
  /// accumulated intermediate, so the work is the first scan plus the sizes
  /// of all intermediates. This is the plan-aware replacement for the
  /// literal per-triple sums of the paper's eq. (2); see cost_model.h.
  double EstimateCqPlanWork(const ConjunctiveQuery& cq) const;

 private:
  const TripleStore* store_;
  const Statistics* stats_;
  const EstimateFeedbackStore* feedback_ = nullptr;
};

}  // namespace rdfopt

#endif  // RDFOPT_COST_CARDINALITY_H_
