#ifndef RDFOPT_COST_RANGE_COLLAPSE_H_
#define RDFOPT_COST_RANGE_COLLAPSE_H_

#include <cstdint>
#include <vector>

#include "rdf/hierarchy_encoding.h"
#include "sparql/query.h"

namespace rdfopt {

/// One collapsible group of union disjuncts: branches identical up to the
/// constant at a single masked site (a type-atom object, or a predicate)
/// whose hids form one consecutive run — exactly what a kScanRange node over
/// `[lo, hi)` produces as a disjoint bag union.
struct CollapsedRange {
  /// Disjunct indices of the member branches, ascending.
  std::vector<size_t> members;
  /// Member whose conjunctive query stands in for the group (the smallest
  /// disjunct index): its atoms give the range chain's variable layout and
  /// its head bindings the union projection. Sound because the collapse
  /// signature pins head variables and head bindings literally across the
  /// group.
  size_t rep = 0;
  /// Index of the masked atom within the representative's atom list.
  size_t atom_index = 0;
  /// True for a class-hid interval (type-atom object site), false for a
  /// property-hid interval (predicate site).
  bool class_space = false;
  uint32_t lo = 0;
  uint32_t hi = 0;  ///< Exclusive.
};

/// Result of the collapse analysis over one UCQ.
struct RangeCollapsePlan {
  std::vector<CollapsedRange> ranges;
  /// Disjunct indices not absorbed by any range, ascending.
  std::vector<size_t> residual;
  /// Union term count after collapse (each range is one term).
  size_t post_terms() const { return ranges.size() + residual.size(); }
};

/// Pure analysis of `ucq` for hierarchy-range collapse (DESIGN.md §12):
/// groups disjuncts by a canonical signature with one masked site — the
/// first type atom whose constant object is an encoded class, else the
/// first non-type atom whose constant predicate is an encoded property;
/// head variables and head bindings stay literal, non-head variables are
/// renumbered by first occurrence (sound: they are existential) — then
/// decomposes each group's masked constants, mapped to hids and sorted,
/// into maximal consecutive runs. Runs of length >= 2 become ranges;
/// everything else (singleton runs, unmaskable disjuncts, unknown
/// constants, duplicate disjuncts — collapsing a duplicate would drop its
/// bag-union contribution) stays residual. Deterministic: identical input
/// yields identical output.
///
/// Shared between the planner (which materializes kScanRange nodes from it)
/// and the §4.1 cost inputs (which charge c_union_term on post_terms()), so
/// the cover oracle prices covers under the same physics the engine runs.
RangeCollapsePlan AnalyzeRangeCollapse(const UnionQuery& ucq,
                                       const HierarchyEncoding& encoding);

}  // namespace rdfopt

#endif  // RDFOPT_COST_RANGE_COLLAPSE_H_
