#ifndef RDFOPT_COST_FEEDBACK_H_
#define RDFOPT_COST_FEEDBACK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sparql/query.h"

namespace rdfopt {

struct PhysicalPlan;

/// Canonical signature of a conjunctive fragment: invariant under atom order
/// and variable renaming (α-equivalence), so the reformulation lattice's
/// repeated fragments — the same cover fragment reappearing across queries
/// and plannings — collapse onto one feedback entry. Constants are kept
/// verbatim (they determine cardinality); variables are renumbered by first
/// occurrence after sorting the atoms by their variable-blind serialization.
/// The head is deliberately excluded: the store corrects the conjunction
/// body estimate (EstimateCQ), which is head-independent.
std::string FragmentSignature(const ConjunctiveQuery& cq);

/// Canonical signature of a whole component UCQ — the key of the
/// materialized-view catalog (DESIGN.md §14). Like FragmentSignature it is
/// invariant under variable renaming, but deliberately NOT under disjunct or
/// atom permutation, and it includes the head and per-disjunct head
/// bindings: a view substitutes a component's *rows in order*, and the
/// planner derives atom order (greedy, tie-broken by input position) and
/// union output order from exactly this syntactic shape. Two components with
/// equal ViewSignature therefore plan to the same tree modulo variable
/// names and produce bit-identical rows against the same snapshot.
std::string ViewSignature(const UnionQuery& ucq);

/// Estimated-vs-actual cardinality feedback, keyed by FragmentSignature (see
/// DESIGN.md §8). The evaluator records every executed union disjunct's
/// (estimate, actual) pair here; CardinalityEstimator consults the store on
/// subsequent plannings, so a misestimated fragment self-corrects the next
/// time any query covers it. Each Record also folds the estimate error into
/// the global `cost.estimate_drift` histogram — the planner-quality signal
/// `!prom` exports.
///
/// Deliberately opt-in (a plain pointer wired by QueryService /
/// QueryAnswerer::EnableFeedback, never ambient): paper-reproduction runs
/// and golden EXPLAIN tests must stay order-independent, which an
/// always-consulted global store would break.
///
/// Thread-safe; bounded by FIFO eviction (`max_entries`); cleared wholesale
/// on snapshot epoch changes — observations against retired data must not
/// steer planning against the new store.
class EstimateFeedbackStore {
 public:
  struct Options {
    size_t max_entries = 4096;
    /// Weight of the newest observation in the exponentially weighted
    /// moving average of observed rows.
    double ewma_alpha = 0.5;
  };

  EstimateFeedbackStore() : options_(Options{}) {}
  explicit EstimateFeedbackStore(Options options) : options_(options) {}

  /// One executed fragment: folds `actual_rows` into the signature's EWMA
  /// and observes the estimate drift ratio.
  void Record(const ConjunctiveQuery& cq, double estimated_rows,
              size_t actual_rows);

  /// Observed (EWMA) row count of the fragment, if it has been executed
  /// under this store; nullopt otherwise.
  std::optional<double> Lookup(const ConjunctiveQuery& cq) const;
  std::optional<double> LookupSignature(const std::string& signature) const;

  /// Drops every entry (snapshot epoch change).
  void Clear();

  size_t size() const;

  struct Entry {
    double observed_rows = 0.0;   ///< EWMA of actual result rows.
    double last_estimate = 0.0;   ///< Most recent pre-feedback estimate.
    uint64_t observations = 0;
  };
  /// Copy of the store's contents, in signature order (shell/debugging).
  std::vector<std::pair<std::string, Entry>> Snapshot() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::deque<std::string> insertion_order_;  ///< FIFO eviction queue.
};

/// Walks an executed plan and records every union disjunct's
/// (est_rows, actual_rows) pair: kUnionAll nodes carry their source
/// ConjunctiveQuery per child (`disjuncts`), and each child chain's root
/// holds the conjunction-body estimate and actual. Skipped children
/// (short-circuited, never executed) are not recorded.
void RecordPlanFeedback(const PhysicalPlan& plan,
                        EstimateFeedbackStore* store);

}  // namespace rdfopt

#endif  // RDFOPT_COST_FEEDBACK_H_
