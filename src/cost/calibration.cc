#include "cost/calibration.h"

#include <algorithm>
#include <string>

#include "common/stopwatch.h"
#include "engine/evaluator.h"
#include "rdf/dictionary.h"
#include "storage/triple_store.h"

namespace rdfopt {

namespace {

/// Synthetic calibration database: per sweep size, a dedicated property with
/// exactly that many distinct (s, o) pairs, plus a 1-1 "chain" continuation
/// for join sweeps.
struct CalibrationDb {
  Dictionary dict;
  TripleStore store;
  std::vector<ValueId> scan_props;   // scan_props[i] has sizes[i] triples.
  std::vector<ValueId> chain_props;  // chain_props[i]: o of scan -> new node.
  ValueId empty_prop = kInvalidValueId;
  std::vector<size_t> sizes;
};

CalibrationDb BuildCalibrationDb() {
  CalibrationDb db;
  db.sizes = {20000, 40000, 80000, 160000};
  std::vector<Triple> triples;
  for (size_t i = 0; i < db.sizes.size(); ++i) {
    std::string suffix = std::to_string(i);
    ValueId scan_p = db.dict.InternIri("cal:scan" + suffix);
    ValueId chain_p = db.dict.InternIri("cal:chain" + suffix);
    db.scan_props.push_back(scan_p);
    db.chain_props.push_back(chain_p);
    for (size_t row = 0; row < db.sizes[i]; ++row) {
      ValueId s = db.dict.InternIri("cal:s" + suffix + "_" +
                                    std::to_string(row));
      ValueId o = db.dict.InternIri("cal:o" + suffix + "_" +
                                    std::to_string(row));
      ValueId t = db.dict.InternIri("cal:t" + suffix + "_" +
                                    std::to_string(row));
      triples.push_back(Triple{s, scan_p, o});
      triples.push_back(Triple{o, chain_p, t});
    }
  }
  db.empty_prop = db.dict.InternIri("cal:empty");
  db.store = TripleStore::Build(std::move(triples));
  return db;
}

// One-atom CQ  q(x, y) :- x <p> y.
ConjunctiveQuery ScanQuery(ValueId p) {
  ConjunctiveQuery cq;
  cq.head = {0, 1};
  cq.atoms.push_back(TriplePattern{PatternTerm::Var(0),
                                   PatternTerm::Const(p),
                                   PatternTerm::Var(1)});
  return cq;
}

// Two-atom chain CQ  q(x, z) :- x <p> y . y <q> z.
ConjunctiveQuery ChainQuery(ValueId p, ValueId q) {
  ConjunctiveQuery cq;
  cq.head = {0, 2};
  cq.atoms.push_back(TriplePattern{PatternTerm::Var(0),
                                   PatternTerm::Const(p),
                                   PatternTerm::Var(1)});
  cq.atoms.push_back(TriplePattern{PatternTerm::Var(1),
                                   PatternTerm::Const(q),
                                   PatternTerm::Var(2)});
  return cq;
}

double MedianMicros(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

template <typename Fn>
double TimeMicros(int repetitions, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    Stopwatch sw;
    fn();
    times.push_back(static_cast<double>(sw.ElapsedMicros()));
  }
  return MedianMicros(std::move(times));
}

}  // namespace

double FitSlope(const std::vector<std::pair<double, double>>& samples) {
  if (samples.size() < 2) return 0.0;
  double n = static_cast<double>(samples.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : samples) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

double FitIntercept(const std::vector<std::pair<double, double>>& samples) {
  if (samples.empty()) return 0.0;
  double n = static_cast<double>(samples.size());
  double sx = 0, sy = 0;
  for (const auto& [x, y] : samples) {
    sx += x;
    sy += y;
  }
  return sy / n - FitSlope(samples) * sx / n;
}

CalibrationReport CalibrateProfile(const EngineProfile& profile,
                                   int repetitions) {
  CalibrationDb db = BuildCalibrationDb();
  Evaluator evaluator(&db.store, &profile);
  CalibrationReport report;
  report.fitted = profile.cost;  // Keep non-fitted fields (spill threshold).

  // 1. Scan sweep: time ~ c_db + (c_t + c_l) * n. The engine always
  //    deduplicates results, so the slope conflates scan and dedup work;
  //    split evenly (the model only ever applies them to the same row sets).
  for (size_t i = 0; i < db.sizes.size(); ++i) {
    ConjunctiveQuery cq = ScanQuery(db.scan_props[i]);
    double us = TimeMicros(repetitions, [&] {
      Result<Relation> r = evaluator.EvaluateCQ(cq, nullptr);
      (void)r;
    });
    report.scan_samples.emplace_back(static_cast<double>(db.sizes[i]), us);
  }
  double scan_slope = std::max(0.0, FitSlope(report.scan_samples));
  report.fitted.c_db = std::max(0.0, FitIntercept(report.scan_samples));
  report.fitted.c_t = scan_slope / 2.0;
  report.fitted.c_l = scan_slope / 2.0;

  // 2. Join sweep: chain query over the same sizes; extra time over the two
  //    scans, divided by the join input rows (2n), gives c_j.
  for (size_t i = 0; i < db.sizes.size(); ++i) {
    ConjunctiveQuery cq = ChainQuery(db.scan_props[i], db.chain_props[i]);
    double us = TimeMicros(repetitions, [&] {
      Result<Relation> r = evaluator.EvaluateCQ(cq, nullptr);
      (void)r;
    });
    double n = static_cast<double>(db.sizes[i]);
    double scans = scan_slope * 2.0 * n;
    report.join_samples.emplace_back(2.0 * n, std::max(0.0, us - scans));
  }
  report.fitted.c_j = std::max(0.0, FitSlope(report.join_samples));

  // 3. Union-term sweep: k empty disjuncts; slope is the per-term overhead.
  for (size_t k : {500, 1000, 2000, 4000}) {
    UnionQuery ucq;
    ucq.head = {0, 1};
    ConjunctiveQuery empty_cq = ScanQuery(db.empty_prop);
    for (size_t j = 0; j < k; ++j) ucq.disjuncts.push_back(empty_cq);
    double us = TimeMicros(repetitions, [&] {
      Result<Relation> r = evaluator.EvaluateUCQ(ucq, nullptr);
      (void)r;
    });
    report.union_term_samples.emplace_back(static_cast<double>(k), us);
  }
  report.fitted.c_union_term =
      std::max(0.0, FitSlope(report.union_term_samples));

  // 4. Materialization sweep: two-component JUCQ joining scan i (smaller,
  //    materialized) with the largest scan (pipelined). The slope over the
  //    materialized rows, minus already-fitted per-row work, gives c_m.
  const size_t pipelined = db.sizes.size() - 1;
  for (size_t i = 0; i + 1 < db.sizes.size(); ++i) {
    JoinOfUnions jucq;
    jucq.head = {0, 1, 2};
    UnionQuery small;
    small.head = {0, 1};
    small.disjuncts.push_back(ScanQuery(db.scan_props[i]));
    // Join on variable 1: the chain property continues the pipelined side.
    UnionQuery large;
    large.head = {1, 2};
    ConjunctiveQuery big;
    big.head = {1, 2};
    big.atoms.push_back(TriplePattern{PatternTerm::Var(1),
                                      PatternTerm::Const(
                                          db.chain_props[pipelined]),
                                      PatternTerm::Var(2)});
    large.disjuncts.push_back(big);
    jucq.components.push_back(std::move(small));
    jucq.components.push_back(std::move(large));
    double us = TimeMicros(repetitions, [&] {
      Result<Relation> r = evaluator.EvaluateJUCQ(jucq, nullptr);
      (void)r;
    });
    report.mat_samples.emplace_back(static_cast<double>(db.sizes[i]), us);
  }
  double mat_slope = std::max(0.0, FitSlope(report.mat_samples));
  // Per materialized row the query also scans, dedups and joins it.
  double overhead =
      report.fitted.c_t + report.fitted.c_l + report.fitted.c_j;
  report.fitted.c_m = std::max(0.0, mat_slope - overhead);

  // c_k (spill regime) keeps its proportional relation to c_l.
  report.fitted.c_k = report.fitted.c_l / 4.0;
  return report;
}

}  // namespace rdfopt
