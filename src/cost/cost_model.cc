#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "cost/range_collapse.h"

namespace rdfopt {

double PaperCostModel::UniqueCost(double rows) const {
  if (rows <= 1.0) return 0.0;
  if (rows < k_.dedup_spill_rows) return k_.c_l * rows;
  return k_.c_k * rows * std::log2(rows);
}

double PaperCostModel::UcqCost(const UcqCostInputs& ucq) const {
  return (k_.c_t + k_.c_j) * ucq.scan_sum +
         k_.c_union_term * static_cast<double>(ucq.num_disjuncts) +
         UniqueCost(ucq.est_result);
}

double PaperCostModel::JucqCost(const std::vector<UcqCostInputs>& components,
                                double est_final_rows) const {
  double total = k_.c_db;
  for (const UcqCostInputs& ucq : components) total += UcqCost(ucq);

  if (components.size() > 1) {
    // The largest-result component is pipelined; the others materialized.
    size_t largest = 0;
    double join_inputs = 0.0;
    for (size_t i = 0; i < components.size(); ++i) {
      join_inputs += components[i].est_result;
      if (components[i].est_result > components[largest].est_result) {
        largest = i;
      }
    }
    total += k_.c_j * join_inputs;  // eq. (3): linear in the join inputs.
    for (size_t i = 0; i < components.size(); ++i) {
      if (i != largest) {
        total += k_.c_m * components[i].est_result;  // eq. (4)
      }
    }
  }
  total += UniqueCost(est_final_rows);
  return total;
}

UcqCostInputs ComputeUcqCostInputs(const UnionQuery& ucq,
                                   const CardinalityEstimator& estimator) {
  UcqCostInputs inputs;
  inputs.num_disjuncts = ucq.disjuncts.size();
  for (const ConjunctiveQuery& cq : ucq.disjuncts) {
    inputs.scan_sum += estimator.EstimateCqPlanWork(cq);
  }
  inputs.est_result = estimator.EstimateUCQ(ucq);
  return inputs;
}

UcqCostInputs ComputeUcqCostInputs(const UnionQuery& ucq,
                                   const CardinalityEstimator& estimator,
                                   const HierarchyEncoding* encoding) {
  UcqCostInputs inputs = ComputeUcqCostInputs(ucq, estimator);
  if (encoding != nullptr) {
    inputs.num_disjuncts = AnalyzeRangeCollapse(ucq, *encoding).post_terms();
  }
  return inputs;
}

UcqCostInputs ComputeUcqCostInputsLiteral(
    const UnionQuery& ucq, const CardinalityEstimator& estimator) {
  UcqCostInputs inputs;
  inputs.num_disjuncts = ucq.disjuncts.size();
  for (const ConjunctiveQuery& cq : ucq.disjuncts) {
    for (const TriplePattern& atom : cq.atoms) {
      inputs.scan_sum += estimator.EstimateAtom(atom);
    }
  }
  inputs.est_result = estimator.EstimateUCQ(ucq);
  return inputs;
}

}  // namespace rdfopt
