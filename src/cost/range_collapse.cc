#include "cost/range_collapse.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace rdfopt {

namespace {

/// Disjunct counts beyond this skip the analysis outright: reformulations
/// past the cap exceed every engine's plan limit by orders of magnitude, so
/// there is nothing a collapse could still rescue.
constexpr size_t kAnalysisCap = size_t{1} << 20;

struct MaskSite {
  bool found = false;
  size_t atom_index = 0;
  bool class_space = false;
  uint32_t hid = 0;
};

/// First maskable site of the disjunct, in atom order: a type atom whose
/// constant object is an encoded class, else a non-type atom whose constant
/// predicate is an encoded property.
MaskSite FindMaskSite(const ConjunctiveQuery& cq,
                      const HierarchyEncoding& enc) {
  const ValueId rdf_type = enc.rdf_type();
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    const TriplePattern& atom = cq.atoms[a];
    if (atom.p.is_var()) continue;
    if (rdf_type != kInvalidValueId && atom.p.value() == rdf_type) {
      if (atom.o.is_var()) continue;
      uint32_t hid = enc.ClassHid(atom.o.value());
      if (hid == HierarchyEncoding::kInvalidHid) continue;
      return {true, a, /*class_space=*/true, hid};
    }
    uint32_t hid = enc.PropertyHid(atom.p.value());
    if (hid == HierarchyEncoding::kInvalidHid) continue;
    return {true, a, /*class_space=*/false, hid};
  }
  return {};
}

// Term-kind tags of the signature serialization.
constexpr uint64_t kTagConst = 2;
constexpr uint64_t kTagMasked = 3;
constexpr uint64_t kTagHeadVar = 4;
constexpr uint64_t kTagBodyVar = 5;

using Signature = std::vector<uint64_t>;

/// Canonical serialization of the disjunct with the masked site replaced by
/// a sentinel: head and head_bindings literal, non-head variables renumbered
/// by first occurrence. Two disjuncts with equal signatures are identical up
/// to the masked constant and the names of their existential variables.
Signature SignatureOf(const ConjunctiveQuery& cq, size_t masked_atom,
                      int masked_pos) {
  Signature sig;
  sig.reserve(4 + 2 * cq.head.size() + 2 * cq.head_bindings.size() +
              6 * cq.atoms.size());
  sig.push_back(cq.head.size());
  for (VarId v : cq.head) sig.push_back(v);
  sig.push_back(cq.head_bindings.size());
  for (const auto& [v, value] : cq.head_bindings) {
    sig.push_back(v);
    sig.push_back(value);
  }
  auto in_head = [&](VarId v) {
    return std::find(cq.head.begin(), cq.head.end(), v) != cq.head.end();
  };
  std::unordered_map<VarId, uint64_t> renumber;
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    const TriplePattern& atom = cq.atoms[a];
    const PatternTerm* terms[3] = {&atom.s, &atom.p, &atom.o};
    for (int i = 0; i < 3; ++i) {
      if (a == masked_atom && i == masked_pos) {
        sig.push_back(kTagMasked);
        sig.push_back(0);
        continue;
      }
      const PatternTerm& t = *terms[i];
      if (!t.is_var()) {
        sig.push_back(kTagConst);
        sig.push_back(t.value());
      } else if (in_head(t.var())) {
        sig.push_back(kTagHeadVar);
        sig.push_back(t.var());
      } else {
        auto [it, inserted] = renumber.emplace(t.var(), renumber.size());
        sig.push_back(kTagBodyVar);
        sig.push_back(it->second);
      }
    }
  }
  return sig;
}

struct Member {
  size_t disjunct;
  uint32_t hid;
  size_t atom_index;
  bool class_space;
};

}  // namespace

RangeCollapsePlan AnalyzeRangeCollapse(const UnionQuery& ucq,
                                       const HierarchyEncoding& encoding) {
  RangeCollapsePlan plan;
  const size_t n = ucq.disjuncts.size();
  auto all_residual = [&]() {
    plan.residual.resize(n);
    for (size_t d = 0; d < n; ++d) plan.residual[d] = d;
    return plan;
  };
  if (n < 2 || n > kAnalysisCap) return all_residual();

  // Group disjuncts by signature. std::map: deterministic group order.
  std::map<Signature, std::vector<Member>> groups;
  for (size_t d = 0; d < n; ++d) {
    MaskSite site = FindMaskSite(ucq.disjuncts[d], encoding);
    if (!site.found) continue;
    Signature sig = SignatureOf(ucq.disjuncts[d], site.atom_index,
                                site.class_space ? 2 : 1);
    groups[std::move(sig)].push_back(
        Member{d, site.hid, site.atom_index, site.class_space});
  }

  std::vector<bool> collapsed(n, false);
  for (auto& [sig, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end(), [](const Member& a,
                                                 const Member& b) {
      return a.hid != b.hid ? a.hid < b.hid : a.disjunct < b.disjunct;
    });
    // Duplicate masked constants stay residual: a range emits each hid's
    // rows once, so absorbing a duplicate would drop its bag contribution.
    std::vector<Member> unique;
    unique.reserve(members.size());
    for (const Member& m : members) {
      if (!unique.empty() && unique.back().hid == m.hid) continue;
      unique.push_back(m);
    }
    // Maximal consecutive-hid runs of length >= 2 become ranges.
    size_t run_begin = 0;
    for (size_t i = 1; i <= unique.size(); ++i) {
      if (i < unique.size() && unique[i].hid == unique[i - 1].hid + 1) {
        continue;
      }
      const size_t run_len = i - run_begin;
      if (run_len >= 2) {
        CollapsedRange range;
        range.lo = unique[run_begin].hid;
        range.hi = unique[i - 1].hid + 1;
        range.class_space = unique[run_begin].class_space;
        range.atom_index = unique[run_begin].atom_index;
        range.rep = unique[run_begin].disjunct;
        for (size_t j = run_begin; j < i; ++j) {
          range.members.push_back(unique[j].disjunct);
          range.rep = std::min(range.rep, unique[j].disjunct);
          collapsed[unique[j].disjunct] = true;
        }
        std::sort(range.members.begin(), range.members.end());
        // The masked atom index is positional in the signature, so every
        // member agrees with the representative's.
        plan.ranges.push_back(std::move(range));
      }
      run_begin = i;
    }
  }

  for (size_t d = 0; d < n; ++d) {
    if (!collapsed[d]) plan.residual.push_back(d);
  }
  // Deterministic final order: ranges by smallest member disjunct.
  std::sort(plan.ranges.begin(), plan.ranges.end(),
            [](const CollapsedRange& a, const CollapsedRange& b) {
              return a.members.front() < b.members.front();
            });
  return plan;
}

}  // namespace rdfopt
