#ifndef RDFOPT_COST_CALIBRATION_H_
#define RDFOPT_COST_CALIBRATION_H_

#include <vector>

#include "cost/cost_constants.h"
#include "engine/engine_profile.h"

namespace rdfopt {

/// Calibration harness: fits the cost-model constants of a profile by
/// running "a set of simple calibration queries on the RDBMS being used"
/// (paper §4.1) — here, on the embedded engine under that profile.
///
/// A synthetic calibration database (chains of triples over a handful of
/// properties, sizes swept over an order of magnitude) isolates each
/// constant:
///   * c_t  — single-atom scans of increasing size;
///   * c_j  — two-atom joins with fixed output and growing inputs;
///   * c_l  — unions with duplicated disjuncts (pure dedup work);
///   * c_m  — two-component JUCQs with growing materialized side;
///   * c_union_term — UCQs of growing numbers of empty disjuncts;
///   * c_db — intercept of the scan sweep.
/// Each is fitted by least-squares slope over the sweep.
struct CalibrationReport {
  CostConstants fitted;
  /// (x, measured_microseconds) samples per sweep, for inspection/tests.
  std::vector<std::pair<double, double>> scan_samples;
  std::vector<std::pair<double, double>> join_samples;
  std::vector<std::pair<double, double>> dedup_samples;
  std::vector<std::pair<double, double>> mat_samples;
  std::vector<std::pair<double, double>> union_term_samples;
};

/// Runs the calibration sweeps under `profile` and returns fitted constants
/// (dedup_spill_rows is kept from the profile's current constants).
/// Deterministic workload; timing noise is averaged over `repetitions`.
CalibrationReport CalibrateProfile(const EngineProfile& profile,
                                   int repetitions = 3);

/// Least-squares slope of y over x through the best intercept; exposed for
/// tests. Returns 0 for fewer than two samples.
double FitSlope(const std::vector<std::pair<double, double>>& samples);
/// The matching intercept.
double FitIntercept(const std::vector<std::pair<double, double>>& samples);

}  // namespace rdfopt

#endif  // RDFOPT_COST_CALIBRATION_H_
