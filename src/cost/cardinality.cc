#include "cost/cardinality.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cost/feedback.h"
#include "engine/planner.h"

namespace rdfopt {

namespace {

ValueId BoundOrAny(const PatternTerm& t) {
  return t.is_var() ? kAnyValue : t.value();
}

}  // namespace

double CardinalityEstimator::EstimateAtom(const TriplePattern& atom) const {
  return static_cast<double>(store_->CountMatches(
      BoundOrAny(atom.s), BoundOrAny(atom.p), BoundOrAny(atom.o)));
}

double CardinalityEstimator::EstimateDistinct(const TriplePattern& atom,
                                              VarId v) const {
  const double card = EstimateAtom(atom);
  double distinct = card;
  const bool in_s = atom.s.is_var() && atom.s.var() == v;
  const bool in_p = atom.p.is_var() && atom.p.var() == v;
  const bool in_o = atom.o.is_var() && atom.o.var() == v;
  if (!in_s && !in_p && !in_o) return 1.0;
  // Without statistics (an Evaluator's fallback estimator) the scan size is
  // the only distinct-count bound available.
  if (stats_ == nullptr) return std::max(1.0, card);

  if (!atom.p.is_var()) {
    const PropertyStats ps = stats_->ForProperty(atom.p.value());
    if (in_s && !atom.o.is_var()) {
      // (?v, p, o): each row has a distinct subject bound to o's group; the
      // scan size itself is the best bound.
      distinct = card;
    } else if (in_s) {
      distinct = static_cast<double>(ps.distinct_subjects);
    } else if (in_o) {
      distinct = static_cast<double>(ps.distinct_objects);
    }
  } else {
    if (in_p) {
      distinct = static_cast<double>(stats_->distinct_properties());
    } else if (in_s) {
      distinct = static_cast<double>(stats_->distinct_subjects());
    } else {
      distinct = static_cast<double>(stats_->distinct_objects());
    }
  }
  return std::max(1.0, std::min(distinct, card));
}

double CardinalityEstimator::EstimateCQ(const ConjunctiveQuery& cq) const {
  // Runtime feedback outranks the model: an observed cardinality for this
  // exact fragment (α-equivalence canonicalized) is strictly better
  // information than the independence assumptions below.
  if (feedback_ != nullptr) {
    if (std::optional<double> observed = feedback_->Lookup(cq)) {
      return *observed;
    }
  }
  double product = 1.0;
  // var -> (occurrence count, max distinct across occurrences).
  std::unordered_map<VarId, std::pair<int, double>> vars;
  for (const TriplePattern& atom : cq.atoms) {
    product *= EstimateAtom(atom);
    std::vector<VarId> atom_vars;
    atom.AppendVariables(&atom_vars);
    std::sort(atom_vars.begin(), atom_vars.end());
    atom_vars.erase(std::unique(atom_vars.begin(), atom_vars.end()),
                    atom_vars.end());
    for (VarId v : atom_vars) {
      double d = EstimateDistinct(atom, v);
      auto& [count, max_d] = vars[v];
      ++count;
      max_d = std::max(max_d, d);
    }
  }
  if (product == 0.0) return 0.0;
  for (const auto& [v, info] : vars) {
    const auto& [count, max_d] = info;
    for (int i = 1; i < count; ++i) product /= std::max(1.0, max_d);
  }
  return product;
}

double CardinalityEstimator::EstimateUCQ(const UnionQuery& ucq) const {
  double sum = 0.0;
  for (const ConjunctiveQuery& cq : ucq.disjuncts) sum += EstimateCQ(cq);
  return sum;
}

double CardinalityEstimator::EstimateCqPlanWork(
    const ConjunctiveQuery& cq) const {
  if (cq.atoms.empty()) return 0.0;
  const size_t n = cq.atoms.size();
  std::vector<double> cards(n);
  for (size_t i = 0; i < n; ++i) cards[i] = EstimateAtom(cq.atoms[i]);
  // The engine's greedy order (engine/planner.h) — the plan the work
  // estimate must follow.
  const std::vector<size_t> order = GreedyAtomOrder(cq.atoms, cards);

  double work = cards[order[0]];
  double inter = cards[order[0]];
  ConjunctiveQuery prefix;
  prefix.atoms.push_back(cq.atoms[order[0]]);
  for (size_t step = 1; step < n; ++step) {
    prefix.atoms.push_back(cq.atoms[order[step]]);
    double out = EstimateCQ(prefix);
    // Probing: each intermediate row drives one index lookup; the rows
    // produced flow onward. Count both sides.
    work += inter + out;
    inter = out;
  }
  return work;
}

double CardinalityEstimator::EstimateJoin(
    const std::vector<std::pair<double, std::vector<VarId>>>& inputs) const {
  double product = 1.0;
  std::unordered_map<VarId, std::pair<int, double>> vars;
  for (const auto& [rows, columns] : inputs) {
    product *= rows;
    for (VarId v : columns) {
      auto& [count, max_d] = vars[v];
      ++count;
      // Distinct values of v in this input are at most its row count.
      max_d = std::max(max_d, rows);
    }
  }
  if (product == 0.0) return 0.0;
  for (const auto& [v, info] : vars) {
    const auto& [count, max_d] = info;
    for (int i = 1; i < count; ++i) product /= std::max(1.0, max_d);
  }
  return product;
}

}  // namespace rdfopt
