// Bibliography search: queries over a DBLP-style bibliographic knowledge
// base where much of the typing is implicit (the generator only asserts
// rdf:type for one author in seven; the rest is entailed by authoredBy's
// range). Shows how the GCov-chosen JUCQ reformulation answers correctly
// and how the cover it picks adapts to the query.
//
// Usage: bibliography_search [num_publications]   (default 20000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "sparql/printer.h"
#include "workload/dblp.h"

namespace {

struct SearchQuery {
  const char* label;
  const char* text;
};

const SearchQuery kSearches[] = {
    {"All authors (mostly implicit from authoredBy's range)",
     "PREFIX bib: <http://dblp.example.org/bib#>\n"
     "SELECT ?a WHERE { ?a rdf:type bib:Author . }"},
    {"Publications presented at conferences, with their contributors",
     "PREFIX bib: <http://dblp.example.org/bib#>\n"
     "SELECT ?x ?c WHERE { ?x bib:publishedIn ?v . "
     "?v rdf:type bib:Conference . ?x bib:contributor ?c . }"},
    {"Citation pairs between works of the same contributor",
     "PREFIX bib: <http://dblp.example.org/bib#>\n"
     "SELECT ?x ?y WHERE { ?x bib:contributor ?a . ?y bib:contributor ?a . "
     "?x bib:cites ?y . }"},
    {"What kind of thing cites a thesis?",
     "PREFIX bib: <http://dblp.example.org/bib#>\n"
     "SELECT ?t WHERE { ?x rdf:type ?t . ?x bib:cites ?y . "
     "?y rdf:type bib:Thesis . }"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rdfopt;
  size_t publications = 20000;
  if (argc > 1) publications = static_cast<size_t>(std::atoi(argv[1]));

  std::printf("Generating a DBLP-style bibliography (%zu publications)...\n",
              publications);
  Graph graph;
  DblpOptions options;
  options.num_publications = publications;
  size_t triples = GenerateDblp(options, &graph);
  graph.FinalizeSchema();

  TripleStore store = TripleStore::Build(graph.data_triples());
  SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
  Statistics stats = Statistics::Compute(store);
  std::printf("  %zu data triples; saturation would add %zu more.\n\n",
              triples, sat.derived_triples());

  QueryAnswerer answerer(&store, &sat.store, &graph.schema(), &graph.vocab(),
                         &stats, &PostgresLikeProfile());

  for (const SearchQuery& sq : kSearches) {
    std::printf("== %s\n", sq.label);
    Result<Query> query = ParseQuery(sq.text, &graph.dict());
    if (!query.ok()) {
      std::printf("   parse error: %s\n",
                  query.status().ToString().c_str());
      continue;
    }
    AnswerOptions ao;
    ao.strategy = Strategy::kGcov;
    Result<AnswerOutcome> r = answerer.Answer(query.ValueOrDie(), ao);
    if (!r.ok()) {
      std::printf("   FAILED: %s\n", r.status().ToString().c_str());
      continue;
    }
    const AnswerOutcome& o = r.ValueOrDie();
    std::printf("   %zu answers in %.2f ms (optimizer %.2f ms, "
                "%zu covers examined)\n",
                o.answers.num_rows(), o.total_ms(), o.optimize_ms,
                o.covers_examined);
    std::printf("   chosen cover:");
    for (const std::vector<int>& fragment : o.chosen_cover.fragments) {
      std::printf(" {");
      for (size_t i = 0; i < fragment.size(); ++i) {
        std::printf("%st%d", i > 0 ? "," : "", fragment[i]);
      }
      std::printf("}");
    }
    std::printf("\n\n");
  }
  return 0;
}
