// University portal: the ontology-based data access scenario the paper's
// introduction motivates. A LUBM-style university knowledge base answers
// portal queries (course catalogs, advisor lookups, alumni search) under
// RDFS constraints, comparing every answering strategy side by side.
//
// Usage: university_portal [num_universities]   (default 2)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace {

struct PortalQuery {
  const char* label;
  const char* text;
};

const PortalQuery kPortalQueries[] = {
    {"Faculty of dept0 (implicit via worksFor/headOf)",
     "PREFIX ub: <http://lubm.example.org/univ#>\n"
     "SELECT ?x WHERE { ?x ub:memberOf "
     "<http://lubm.example.org/data/univ0/dept0> . }"},
    {"All people and their classification",
     "PREFIX ub: <http://lubm.example.org/univ#>\n"
     "SELECT ?x WHERE { ?x rdf:type ub:Person . }"},
    {"Students whose advisor teaches one of their courses",
     "PREFIX ub: <http://lubm.example.org/univ#>\n"
     "SELECT ?s ?p WHERE { ?s ub:advisor ?p . ?p ub:teacherOf ?c . "
     "?s ub:takesCourse ?c . }"},
    {"Alumni of univ0 employed by any organization",
     "PREFIX ub: <http://lubm.example.org/univ#>\n"
     "SELECT ?x ?o WHERE { ?x ub:degreeFrom "
     "<http://lubm.example.org/data/univ0> . ?x ub:memberOf ?o . }"},
    {"Everything about entities of dept0 (type-variable query)",
     "PREFIX ub: <http://lubm.example.org/univ#>\n"
     "SELECT ?x ?t WHERE { ?x rdf:type ?t . ?x ub:memberOf "
     "<http://lubm.example.org/data/univ0/dept0> . }"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rdfopt;
  size_t universities = 2;
  if (argc > 1) universities = static_cast<size_t>(std::atoi(argv[1]));

  std::printf("Generating a %zu-university LUBM-style knowledge base...\n",
              universities);
  Graph graph;
  LubmOptions options;
  options.num_universities = universities;
  size_t triples = GenerateLubm(options, &graph);
  graph.FinalizeSchema();

  TripleStore store = TripleStore::Build(graph.data_triples());
  SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
  Statistics stats = Statistics::Compute(store);
  std::printf("  %zu data triples, %zu after saturation (+%zu derived)\n\n",
              triples, sat.output_triples, sat.derived_triples());

  QueryAnswerer answerer(&store, &sat.store, &graph.schema(), &graph.vocab(),
                         &stats, &PostgresLikeProfile());

  const Strategy strategies[] = {Strategy::kSaturation, Strategy::kUcq,
                                 Strategy::kScq, Strategy::kGcov};
  for (const PortalQuery& pq : kPortalQueries) {
    std::printf("== %s\n", pq.label);
    Result<Query> query = ParseQuery(pq.text, &graph.dict());
    if (!query.ok()) {
      std::printf("   parse error: %s\n",
                  query.status().ToString().c_str());
      continue;
    }
    for (Strategy s : strategies) {
      AnswerOptions ao;
      ao.strategy = s;
      Result<AnswerOutcome> r = answerer.Answer(query.ValueOrDie(), ao);
      if (!r.ok()) {
        std::printf("   %-10s FAILED: %s\n",
                    std::string(StrategyName(s)).c_str(),
                    r.status().ToString().c_str());
        continue;
      }
      const AnswerOutcome& o = r.ValueOrDie();
      std::printf("   %-10s %6zu answers  %8.2f ms  (%zu union terms, "
                  "%zu components)\n",
                  std::string(StrategyName(s)).c_str(),
                  o.answers.num_rows(), o.total_ms(), o.union_terms,
                  o.num_components);
    }
    std::printf("\n");
  }
  return 0;
}
