// Quickstart: load a tiny RDF graph (the paper's running example), pose a
// SPARQL query, and answer it by reformulation — no saturation needed.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "optimizer/answering.h"
#include "rdf/ntriples.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "sparql/printer.h"

int main() {
  using namespace rdfopt;

  // 1. An RDF graph: the book example of the paper (Examples 1-3).
  //    Schema triples (subClassOf/subPropertyOf/domain/range) are routed to
  //    the in-memory schema automatically.
  const char* document = R"(
# RDFS constraints
<Book> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <Publication> .
<writtenBy> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <hasAuthor> .
<writtenBy> <http://www.w3.org/2000/01/rdf-schema#domain> <Book> .
<writtenBy> <http://www.w3.org/2000/01/rdf-schema#range> <Person> .
# Facts
<doi1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Book> .
<doi1> <writtenBy> _:b1 .
<doi1> <hasTitle> "Game of Thrones" .
_:b1 <hasName> "George R. R. Martin" .
<doi1> <publishedIn> "1996" .
)";

  Graph graph;
  Status load = ParseNTriples(document, &graph);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  graph.FinalizeSchema();
  std::printf("Loaded %zu data triples and %zu schema triples.\n",
              graph.num_data_triples(), graph.num_schema_triples());

  // 2. Build the store and its statistics (no saturation!).
  TripleStore store = TripleStore::Build(graph.data_triples());
  Statistics stats = Statistics::Compute(store);

  // 3. The paper's Example 3: names of authors of things connected to 1996.
  //    The answer is implicit - no explicit hasAuthor triple exists.
  const char* sparql =
      "SELECT ?name WHERE { ?book <hasAuthor> ?author . "
      "?author <hasName> ?name . ?book ?p \"1996\" . }";
  Result<Query> query = ParseQuery(sparql, &graph.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query: %s\n", ToString(query.ValueOrDie(),
                                      graph.dict()).c_str());

  // 4. Answer it with the cost-based JUCQ strategy (GCov).
  QueryAnswerer answerer(&store, /*saturated=*/nullptr, &graph.schema(),
                         &graph.vocab(), &stats, &PostgresLikeProfile());
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  Result<AnswerOutcome> outcome = answerer.Answer(query.ValueOrDie(),
                                                  options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "answering failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  const AnswerOutcome& o = outcome.ValueOrDie();
  std::printf("Answered in %.2f ms via a %zu-component JUCQ (%zu union "
              "terms), %zu cover(s) examined.\n",
              o.total_ms(), o.num_components, o.union_terms,
              o.covers_examined);
  for (size_t i = 0; i < o.answers.num_rows(); ++i) {
    std::printf("  answer: %s\n",
                graph.dict().term(o.answers.at(i, 0)).Encoded().c_str());
  }
  // Expected: "George R. R. Martin" - found through the subproperty and
  // range constraints even though the data never states hasAuthor.
  return o.answers.num_rows() == 1 ? 0 : 1;
}
