// Dynamic updates: the scenario where reformulation shines (paper §1, §5.3).
// Saturation answers fast but must be recomputed after updates;
// reformulation reasons at query time and is "intrinsically robust to
// updates". This example interleaves inserts with queries and accounts for
// the maintenance cost each strategy pays.
//
// Usage: dynamic_updates [num_universities] [num_update_rounds]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

int main(int argc, char** argv) {
  using namespace rdfopt;
  size_t universities = 2;
  size_t rounds = 5;
  if (argc > 1) universities = static_cast<size_t>(std::atoi(argv[1]));
  if (argc > 2) rounds = static_cast<size_t>(std::atoi(argv[2]));

  Graph graph;
  LubmOptions options;
  options.num_universities = universities;
  GenerateLubm(options, &graph);
  graph.FinalizeSchema();
  std::printf("Initial load: %zu data triples.\n\n",
              graph.num_data_triples());

  const char* sparql =
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x ub:memberOf "
      "<http://lubm.example.org/data/univ0/dept0> . }";

  Dictionary& dict = graph.dict();
  ValueId works_for = dict.LookupIri(
      "http://lubm.example.org/univ#worksFor");
  ValueId dept0 = dict.LookupIri(
      "http://lubm.example.org/data/univ0/dept0");

  double total_saturation_maintenance_ms = 0.0;
  double total_saturation_query_ms = 0.0;
  double total_reformulation_query_ms = 0.0;

  for (size_t round = 0; round < rounds; ++round) {
    // An update arrives: a batch of new hires in dept0.
    for (int i = 0; i < 50; ++i) {
      ValueId hire = dict.InternIri(
          "http://lubm.example.org/data/hire" + std::to_string(round) + "_" +
          std::to_string(i));
      graph.AddEncoded(hire, works_for, dept0);
    }

    // Both sides rebuild the store over the updated data; only the
    // saturation side must additionally re-derive the closure.
    TripleStore store = TripleStore::Build(graph.data_triples());
    Statistics stats = Statistics::Compute(store);

    Stopwatch maintenance;
    SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
    double maintenance_ms = maintenance.ElapsedMillis();
    total_saturation_maintenance_ms += maintenance_ms;

    QueryAnswerer answerer(&store, &sat.store, &graph.schema(),
                           &graph.vocab(), &stats, &PostgresLikeProfile());
    Result<Query> query = ParseQuery(sparql, &graph.dict());
    if (!query.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }

    AnswerOptions sat_opts;
    sat_opts.strategy = Strategy::kSaturation;
    Result<AnswerOutcome> by_sat = answerer.Answer(query.ValueOrDie(),
                                                   sat_opts);
    AnswerOptions gcov_opts;
    gcov_opts.strategy = Strategy::kGcov;
    Result<AnswerOutcome> by_ref = answerer.Answer(query.ValueOrDie(),
                                                   gcov_opts);
    if (!by_sat.ok() || !by_ref.ok()) {
      std::fprintf(stderr, "answering failed\n");
      return 1;
    }
    total_saturation_query_ms += by_sat.ValueOrDie().total_ms();
    total_reformulation_query_ms += by_ref.ValueOrDie().total_ms();

    std::printf(
        "round %zu: %5zu members of dept0 | saturation: %7.1f ms "
        "maintenance + %6.2f ms query | reformulation: %6.2f ms query\n",
        round + 1, by_ref.ValueOrDie().answers.num_rows(), maintenance_ms,
        by_sat.ValueOrDie().total_ms(), by_ref.ValueOrDie().total_ms());
    if (by_sat.ValueOrDie().answers.num_rows() !=
        by_ref.ValueOrDie().answers.num_rows()) {
      std::fprintf(stderr, "ANSWER MISMATCH\n");
      return 1;
    }
  }

  std::printf(
      "\nTotals over %zu update rounds:\n"
      "  saturation-based:    %8.1f ms (of which %.1f ms maintenance)\n"
      "  reformulation-based: %8.1f ms (no maintenance at all)\n",
      rounds,
      total_saturation_maintenance_ms + total_saturation_query_ms,
      total_saturation_maintenance_ms, total_reformulation_query_ms);
  return 0;
}
