// Minimal TCP front end over the QueryService (DESIGN.md §10): the serving
// deployment of the library. Loads a dataset, builds one shared service and
// answers queries for any number of concurrent clients, one per connection —
// cache hits, admission control and epoch invalidation all come from the
// service layer; this file is only sockets and JSON.
//
// Usage:
//   rdfopt_server [--port N] <file.nt> | --lubm <universities>
//                 | --dblp <publications>
//
// Line protocol (try it with `nc localhost 8094`): every request is one
// line, every response is one JSON line.
//
//   <SPARQL query on a single line>
//       -> {"ok":true,"columns":[...],"rows":[[...],...],"row_count":N,
//           "truncated":false,"cache_hit":true,"epoch":0,
//           "queue_wait_ms":...,"evaluate_ms":...,"total_ms":...}
//       -> {"ok":false,"error":"..."} on parse/answer failure
//   !stats      service counters (cache + admission) as JSON
//   !metrics    the process metrics registry as JSON
//   !prom       the registry in Prometheus text exposition format. The only
//               multi-line response; scrape until the "# EOF" line (also
//               what a Prometheus file_sd/blackbox relay should forward).
//   !slowlog    the slow-query log, one JSON line per record, oldest first,
//               terminated by a "# EOF" line
//   !views      the materialized-view catalog (DESIGN.md §14): counters plus
//               one entry per known fragment, as JSON. Views are on by
//               default in the server (--views off disables them)
//   !quit       closes this connection
//   !shutdown   stops the whole server (drains open connections)
//
// Responses cap the materialized rows at --max-rows (default 100);
// "row_count" is always the full count.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "rdf/ntriples.h"
#include "service/query_service.h"
#include "workload/dblp.h"
#include "workload/lubm.h"

namespace {

using namespace rdfopt;

struct ServerState {
  QueryService* service = nullptr;
  std::string preamble;  // PREFIX declarations prepended to bare queries.
  size_t max_rows = 100;
  std::atomic<bool> shutting_down{false};
  int listen_fd = -1;

  // Open client sockets, so !shutdown can unblock their reads.
  std::mutex clients_mu;
  std::set<int> clients;
};

/// Writes all of `text` plus a trailing newline; false once the peer is gone.
bool SendLine(int fd, const std::string& text) {
  std::string out = text;
  out += '\n';
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string QueryResponse(ServerState* state, const std::string& line) {
  std::string text = line;
  if (text.find("PREFIX") == std::string::npos &&
      text.find("prefix") == std::string::npos) {
    text = state->preamble + text;
  }
  Result<ServiceOutcome> result = state->service->AnswerText(text);
  JsonWriter json;
  json.BeginObject();
  if (!result.ok()) {
    json.Key("ok").Value(false);
    json.Key("error").Value(result.status().ToString());
    json.EndObject();
    return json.TakeString();
  }
  const ServiceOutcome& o = result.ValueOrDie();
  json.Key("ok").Value(true);
  json.Key("columns").BeginArray();
  for (const std::string& name : o.columns) json.Value(name);
  json.EndArray();
  const size_t shown = std::min(o.answers.num_rows(), state->max_rows);
  json.Key("rows").BeginArray();
  for (size_t i = 0; i < shown; ++i) {
    json.BeginArray();
    for (const std::string& term : state->service->DecodeRow(o.answers, i)) {
      json.Value(term);
    }
    json.EndArray();
  }
  json.EndArray();
  json.Key("row_count").Value(uint64_t{o.answers.num_rows()});
  json.Key("truncated").Value(o.answers.num_rows() > shown);
  json.Key("cache_hit").Value(o.cache_hit);
  json.Key("epoch").Value(uint64_t{o.epoch});
  json.Key("queue_wait_ms").Value(o.queue_wait_ms);
  json.Key("evaluate_ms").Value(o.evaluate_ms);
  json.Key("total_ms").Value(o.total_ms);
  json.EndObject();
  return json.TakeString();
}

std::string StatsResponse(ServerState* state) {
  QueryService::Stats s = state->service->stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("epoch").Value(uint64_t{s.epoch});
  json.Key("cache").BeginObject();
  json.Key("hits").Value(s.cache.hits);
  json.Key("misses").Value(s.cache.misses);
  json.Key("evictions").Value(s.cache.evictions);
  json.Key("stale_puts").Value(s.cache.stale_puts);
  json.Key("entries").Value(uint64_t{s.cache.entries});
  json.Key("bytes").Value(uint64_t{s.cache.bytes});
  json.EndObject();
  json.Key("admission").BeginObject();
  json.Key("running").Value(uint64_t{s.admission.running});
  json.Key("waiting").Value(uint64_t{s.admission.waiting});
  json.Key("admitted").Value(s.admission.admitted);
  json.Key("shed").Value(s.admission.shed);
  json.Key("deadline_exceeded").Value(s.admission.deadline_exceeded);
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

std::string ViewsResponse(ServerState* state) {
  const ViewCatalog* views = state->service->views();
  ViewCatalogStats vs = views->stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("enabled").Value(state->service->options().enable_views);
  json.Key("epoch").Value(uint64_t{views->current_epoch()});
  json.Key("lookups").Value(vs.lookups);
  json.Key("hits").Value(vs.hits);
  json.Key("misses").Value(vs.misses);
  json.Key("offers").Value(vs.offers);
  json.Key("admitted").Value(vs.admitted);
  json.Key("rejected").Value(vs.rejected);
  json.Key("stale_offers").Value(vs.stale_offers);
  json.Key("evictions").Value(vs.evictions);
  json.Key("invalidations").Value(vs.invalidations);
  json.Key("carry_forwards").Value(vs.carry_forwards);
  json.Key("refreshes").Value(vs.refreshes);
  json.Key("promotions").Value(vs.promotions);
  json.Key("demotions").Value(vs.demotions);
  json.Key("bytes").Value(uint64_t{vs.bytes});
  json.Key("entries").BeginArray();
  for (const ViewInfo& info : views->Entries()) {
    json.BeginObject();
    json.Key("signature").Value(info.signature);
    json.Key("pinned").Value(info.pinned);
    json.Key("resident").Value(info.resident);
    json.Key("epoch").Value(uint64_t{info.epoch});
    json.Key("rows").Value(uint64_t{info.rows});
    json.Key("bytes").Value(uint64_t{info.bytes});
    json.Key("observations").Value(info.observations);
    json.Key("hits").Value(info.hits);
    json.Key("union_terms").Value(uint64_t{info.union_terms});
    json.Key("est_cost").Value(info.est_cost);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

/// One connection: buffered line reads, one JSON line back per request.
void ServeConnection(ServerState* state, int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // Peer closed (or !shutdown shut the socket down).
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == "!quit") break;
    if (line == "!shutdown") {
      SendLine(fd, "{\"ok\":true,\"shutting_down\":true}");
      state->shutting_down.store(true);
      // Unblock the accept loop; it drains the remaining connections.
      ::shutdown(state->listen_fd, SHUT_RDWR);
      break;
    }
    std::string response;
    if (line == "!stats") {
      response = StatsResponse(state);
    } else if (line == "!metrics") {
      response = MetricsRegistry::Global().ToJson(/*indent=*/0);
    } else if (line == "!prom") {
      // Ends with "# EOF\n"; SendLine adds the final newline itself.
      response = MetricsRegistry::Global().ToPrometheusText();
      if (!response.empty() && response.back() == '\n') response.pop_back();
    } else if (line == "!views") {
      response = ViewsResponse(state);
    } else if (line == "!slowlog") {
      for (const std::string& entry : state->service->slow_log()->Lines()) {
        response += entry;
        response += '\n';
      }
      response += "# EOF";
    } else {
      response = QueryResponse(state, line);
    }
    if (!SendLine(fd, response)) break;
  }
  {
    // Deregister before close: once closed the fd number is reusable, and
    // the set must never hold a number that now names someone else's socket.
    std::lock_guard<std::mutex> lock(state->clients_mu);
    state->clients.erase(fd);
  }
  ::close(fd);
}

int Usage() {
  std::fprintf(stderr,
               "usage: rdfopt_server [--port N] [--max-rows N] [--slow-ms X] "
               "[--views on|off] "
               "<file.nt> | --lubm <universities> | --dblp <publications>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8094;
  size_t max_rows = 100;
  double slow_ms = -1.0;  // < 0: keep the service default.
  bool enable_views = true;  // The serving deployment wants warm fragments.
  std::vector<std::string> args(argv + 1, argv + argc);
  Graph graph;
  std::string preamble;
  bool loaded = false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--port" && i + 1 < args.size()) {
      port = static_cast<uint16_t>(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--max-rows" && i + 1 < args.size()) {
      max_rows = static_cast<size_t>(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--slow-ms" && i + 1 < args.size()) {
      slow_ms = std::atof(args[++i].c_str());
    } else if (args[i] == "--views" && i + 1 < args.size()) {
      enable_views = (args[++i] != "off");
    } else if (args[i] == "--lubm" && i + 1 < args.size()) {
      LubmOptions options;
      options.num_universities = static_cast<size_t>(
          std::atoi(args[++i].c_str()));
      GenerateLubm(options, &graph);
      preamble = "PREFIX ub: <http://lubm.example.org/univ#>\n";
      loaded = true;
    } else if (args[i] == "--dblp" && i + 1 < args.size()) {
      DblpOptions options;
      options.num_publications = static_cast<size_t>(
          std::atoi(args[++i].c_str()));
      GenerateDblp(options, &graph);
      preamble = "PREFIX bib: <http://dblp.example.org/bib#>\n";
      loaded = true;
    } else if (!args[i].empty() && args[i][0] != '-') {
      std::ifstream in(args[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", args[i].c_str());
        return 2;
      }
      std::stringstream data;
      data << in.rdbuf();
      Status st = ParseNTriples(data.str(), &graph);
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        return 1;
      }
      loaded = true;
    } else {
      return Usage();
    }
  }
  if (!loaded) return Usage();

  // A write on a connection the client already closed must surface as a
  // send() error, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  EngineProfile profile = PostgresLikeProfile();
  ServiceOptions service_options;
  if (slow_ms >= 0.0) service_options.slow_query_ms = slow_ms;
  service_options.enable_views = enable_views;
  QueryService service(&graph, profile, service_options);
  ServerState state;
  state.service = &service;
  state.preamble = preamble;
  state.max_rows = max_rows;

  state.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (state.listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  int reuse = 1;
  ::setsockopt(state.listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse,
               sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(state.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(state.listen_fd, 64) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  std::printf("rdfopt_server: %zu data triples, serving on port %u "
              "(one query per line; !stats !metrics !prom !slowlog !views "
              "!quit !shutdown)\n",
              graph.data_triples().size(), static_cast<unsigned>(port));
  std::fflush(stdout);

  std::vector<std::thread> workers;
  while (!state.shutting_down.load()) {
    int fd = ::accept(state.listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listen_fd shut down or hard error.
    {
      std::lock_guard<std::mutex> lock(state.clients_mu);
      state.clients.insert(fd);
    }
    workers.emplace_back(ServeConnection, &state, fd);
  }

  // Drain: shut down every still-open connection so its read returns, then
  // join. ServeConnection erases fds as it exits; a stale fd here is fine
  // (shutdown on a closed fd just returns EBADF).
  {
    std::lock_guard<std::mutex> lock(state.clients_mu);
    for (int fd : state.clients) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : workers) t.join();
  ::close(state.listen_fd);
  std::printf("rdfopt_server: shut down (%s)\n",
              StatsResponse(&state).c_str());
  return 0;
}
