// Interactive SPARQL shell over an RDF database with query-time reasoning:
// the "downstream tool" face of the library. Loads N-Triples from a file or
// generates a synthetic workload, then reads SPARQL queries from stdin.
//
// Usage:
//   sparql_shell data.nt
//   sparql_shell --lubm 2        (2 universities)
//   sparql_shell --dblp 20000    (20000 publications)
//
// Shell commands (a query is everything up to a line ending in '}' or a
// lone ';'):
//   .strategy ucq|scq|ecov|gcov|saturation
//   .prune on|off          data-aware disjunct pruning
//   .minimize on|off       constraint-aware query minimization
//   .explain on|off|analyze  print the physical plan before the answers;
//                          `analyze` also shows the actual rows each plan
//                          node produced during execution
//   .sql on|off            print the SQL deployment of the JUCQ
//   .trace on|off          print the span tree after each query
//   .threads N             evaluator worker threads (1 = sequential;
//                          answers are identical at any setting)
//   .encoding on|off       hierarchy-aware (LiteMat-style) dictionary
//                          encoding: class/property ids are DFS-ordered
//                          over the subsumption DAG and the planner
//                          collapses reformulation unions into single
//                          interval range scans (.explain shows the
//                          ScanRange nodes and "collapsed from N")
//   .vector [N|off]        switch to the batch execution engine with batch
//                          size N (default 1024) and union-subplan
//                          factoring; `off` restores the tuple-at-a-time
//                          engine. Answers are identical either way;
//                          .explain shows [vector=N] and shared nodes
//   .verify on|off         statically verify every physical plan against
//                          the executor's structural invariants before
//                          running it (engine/plan_verifier.h); a violation
//                          fails the query with the offending node marked
//   .metrics [reset|prom]  dump (or zero) the process metrics registry;
//                          `prom` prints the Prometheus text exposition
//   .service [on|off]      route queries through the QueryService front
//                          door (plan cache + admission control); bare
//                          `.service` prints its counters
//   .slowlog [N|ms X|clear]  the service's slow-query log (JSON lines,
//                          newest N; `ms X` sets the threshold; needs
//                          .service on)
//   .views [on|off|stats]  materialized fragment views (DESIGN.md §14):
//                          on/off arms the flag for the next .service on;
//                          `stats` (or bare .views) prints the catalog's
//                          counters and per-view entries
//   .calibrate             fit the cost-model constants on this machine
//   .stats                 database statistics
//   .help / .quit

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "cost/calibration.h"
#include "engine/explain.h"
#include "optimizer/answering.h"
#include "rdf/ntriples.h"
#include "reasoner/saturation.h"
#include "service/query_service.h"
#include "sparql/parser.h"
#include "sparql/printer.h"
#include "sparql/sql.h"
#include "workload/dblp.h"
#include "workload/lubm.h"

namespace {

using namespace rdfopt;

void PrintAnswers(const Relation& answers, const Query& query,
                  const Dictionary& dict, size_t limit = 20) {
  for (size_t i = 0; i < answers.num_rows() && i < limit; ++i) {
    std::printf("  ");
    for (size_t c = 0; c < answers.arity(); ++c) {
      std::printf("%s%s", c > 0 ? "  " : "",
                  dict.term(answers.at(i, c)).Encoded().c_str());
    }
    if (answers.arity() == 0) std::printf("true");
    std::printf("\n");
  }
  if (answers.num_rows() > limit) {
    std::printf("  ... (%zu rows total)\n", answers.num_rows());
  }
  (void)query;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sparql_shell <file.nt> | --lubm <universities> | "
               "--dblp <publications>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Graph graph;
  std::string preamble;  // PREFIX declarations prepended to every query.
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--lubm") == 0) {
    LubmOptions options;
    options.num_universities =
        argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 1;
    GenerateLubm(options, &graph);
    preamble = "PREFIX ub: <http://lubm.example.org/univ#>\n";
    std::printf("Generated LUBM-style data "
                "(prefix ub: predeclared).\n");
  } else if (std::strcmp(argv[1], "--dblp") == 0) {
    DblpOptions options;
    if (argc > 2) {
      options.num_publications = static_cast<size_t>(std::atoi(argv[2]));
    }
    GenerateDblp(options, &graph);
    preamble = "PREFIX bib: <http://dblp.example.org/bib#>\n";
    std::printf("Generated DBLP-style data "
                "(prefix bib: predeclared).\n");
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Status st = ParseNTriples(buffer.str(), &graph);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  graph.FinalizeSchema();

  TripleStore store = TripleStore::Build(graph.data_triples());
  SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
  Statistics stats = Statistics::Compute(store);
  EngineProfile profile = PostgresLikeProfile();
  QueryAnswerer answerer(&store, &sat.store, &graph.schema(), &graph.vocab(),
                         &stats, &profile);
  std::printf("%zu data triples, %zu schema constraints. Strategy: GCov. "
              "Type .help for commands.\n",
              store.size(), graph.schema().num_constraints());

  AnswerOptions options;
  bool explain = false;
  bool explain_analyze = false;
  bool emit_sql = false;
  bool trace = false;
  bool enable_views = false;
  std::unique_ptr<QueryService> service;
  TraceSession trace_session;
  CardinalityEstimator estimator(&store, &stats);
  std::string pending;
  std::string line;
  while (std::printf("rdfopt> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (pending.empty() && !line.empty() && line[0] == '.') {
      std::istringstream cmd(line);
      std::string op, arg;
      cmd >> op >> arg;
      if (op == ".quit" || op == ".exit") break;
      if (op == ".help") {
        std::printf(".strategy ucq|scq|ecov|gcov|saturation | .prune on|off "
                    "| .subsume on|off | .minimize on|off "
                    "| .explain on|off|analyze | .sql on|off | .trace on|off "
                    "| .threads N | .encoding on|off | .vector [N|off] "
                    "| .verify on|off | .metrics [reset|prom] "
                    "| .service [on|off] | .slowlog [N|ms X|clear] "
                    "| .views [on|off|stats] | .calibrate | .stats | .quit\n"
                    ".explain analyze prints the executed plan with "
                    "estimated AND actual rows per node\n"
                    ".service on routes queries through the caching front "
                    "door; bare .service prints its counters\n"
                    ".slowlog prints the service's slow-query log as JSON "
                    "lines (.slowlog ms 50 sets the threshold)\n"
                    ".views on arms materialized fragment views for the next "
                    ".service on; .views stats prints the catalog\n");
      } else if (op == ".strategy") {
        if (arg == "ucq") options.strategy = Strategy::kUcq;
        else if (arg == "scq") options.strategy = Strategy::kScq;
        else if (arg == "ecov") options.strategy = Strategy::kEcov;
        else if (arg == "gcov") options.strategy = Strategy::kGcov;
        else if (arg == "saturation") options.strategy = Strategy::kSaturation;
        else { std::printf("unknown strategy '%s'\n", arg.c_str()); continue; }
        std::printf("strategy = %s\n",
                    std::string(StrategyName(options.strategy)).c_str());
      } else if (op == ".prune") {
        options.prune_empty_disjuncts = (arg == "on");
        std::printf("prune = %s\n", arg == "on" ? "on" : "off");
      } else if (op == ".minimize") {
        options.minimize_query = (arg == "on");
        std::printf("minimize = %s\n", arg == "on" ? "on" : "off");
      } else if (op == ".subsume") {
        options.prune_subsumed_disjuncts = (arg == "on");
        std::printf("subsume = %s\n", arg == "on" ? "on" : "off");
      } else if (op == ".explain") {
        explain = (arg == "on" || arg == "analyze");
        explain_analyze = (arg == "analyze");
        options.keep_reformulation = explain || emit_sql;
        std::printf("explain = %s\n",
                    explain_analyze ? "analyze" : (explain ? "on" : "off"));
      } else if (op == ".sql") {
        emit_sql = (arg == "on");
        options.keep_reformulation = explain || emit_sql;
        std::printf("sql = %s\n", emit_sql ? "on" : "off");
      } else if (op == ".trace") {
        trace = (arg == "on");
        TraceSession::Install(trace ? &trace_session : nullptr);
        std::printf("trace = %s\n", trace ? "on" : "off");
      } else if (op == ".threads") {
        int n = std::atoi(arg.c_str());
        if (n < 1) {
          std::printf(".threads N — N >= 1 (1 = sequential)\n");
          continue;
        }
        profile.worker_threads = static_cast<size_t>(n);
        std::printf("threads = %d%s\n", n,
                    n == 1 ? " (sequential)" : "");
      } else if (op == ".encoding") {
        if (arg == "on") {
          if (store.hierarchy() == nullptr) {
            store.AttachHierarchy(std::make_shared<const HierarchyEncoding>(
                HierarchyEncoding::Build(graph.schema(),
                                         graph.vocab().rdf_type)));
          }
          profile.hierarchy_ranges = true;
          std::printf("encoding = on (%zu class hids, %zu property hids; "
                      "reformulation unions collapse to interval scans)\n",
                      static_cast<size_t>(store.hierarchy()->num_class_hids()),
                      static_cast<size_t>(store.hierarchy()->num_property_hids()));
        } else if (arg == "off") {
          profile.hierarchy_ranges = false;
          std::printf("encoding = off\n");
        } else {
          std::printf(".encoding on|off\n");
          continue;
        }
        if (service != nullptr) {
          std::printf("note: run .service on again to apply the encoding "
                      "switch to the service front door\n");
        }
      } else if (op == ".vector") {
        // The answerer holds a pointer to `profile`, so assigning through
        // it switches the engine for every later query. Worker threads are
        // orthogonal and survive the switch.
        size_t threads = profile.worker_threads;
        if (arg == "off" || arg == "1") {
          profile = PostgresLikeProfile();
          profile.worker_threads = threads;
          std::printf("vector = off (tuple-at-a-time engine)\n");
        } else {
          long n = arg.empty() ? static_cast<long>(kBatchRows)
                               : std::atol(arg.c_str());
          if (n < 2) {
            std::printf(".vector [N|off] — batch size N >= 2 "
                        "(default %zu)\n", kBatchRows);
            continue;
          }
          if (n > static_cast<long>(kBatchRows)) {
            // The executor's batch buffers and selection vectors are
            // physically kBatchRows wide; a wider width would only misprice
            // the cost model (and fail plan verification).
            std::printf("note: batch size clamped to %zu (the executor's "
                        "physical batch width)\n", kBatchRows);
            n = static_cast<long>(kBatchRows);
          }
          profile = Vectorized(PostgresLikeProfile(),
                               static_cast<size_t>(n));
          profile.worker_threads = threads;
          std::printf("vector = %ld (batch engine, union-subplan "
                      "factoring on)\n", n);
        }
        if (service != nullptr) {
          std::printf("note: run .service on again to apply the engine "
                      "switch to the service front door\n");
        }
      } else if (op == ".verify") {
        if (arg == "on" || arg == "off") {
          options.verify_plans = (arg == "on");
          std::printf("verify = %s%s\n", arg.c_str(),
                      options.verify_plans
                          ? " (every plan is structurally verified before "
                            "execution; violations abort the query with the "
                            "offending node marked)"
                          : "");
          if (service != nullptr) {
            std::printf("note: run .service on again to apply the verify "
                        "switch to the service front door\n");
          }
        } else {
          std::printf(".verify on|off — static plan verification before "
                      "execution (currently %s)\n",
                      options.verify_plans ? "on" : "off");
        }
      } else if (op == ".metrics") {
        if (arg == "reset") {
          MetricsRegistry::Global().Reset();
          std::printf("metrics registry reset\n");
        } else if (arg == "prom") {
          std::printf("%s",
                      MetricsRegistry::Global().ToPrometheusText().c_str());
        } else {
          std::printf("%s\n",
                      MetricsRegistry::Global().ToJson(/*indent=*/2).c_str());
        }
      } else if (op == ".slowlog") {
        if (!service) {
          std::printf("slow-query log needs the service: .service on\n");
        } else if (arg == "clear") {
          service->slow_log()->Clear();
          std::printf("slow-query log cleared\n");
        } else if (arg == "ms") {
          std::string value;
          cmd >> value;
          double ms = std::atof(value.c_str());
          service->slow_log()->set_threshold_ms(ms);
          std::printf("slow-query threshold = %.1f ms\n", ms);
        } else {
          size_t max = arg.empty()
                           ? 0
                           : static_cast<size_t>(std::atoi(arg.c_str()));
          std::vector<std::string> entries = service->slow_log()->Lines(max);
          for (const std::string& entry : entries) {
            std::printf("%s\n", entry.c_str());
          }
          std::printf("(%zu record(s), threshold %.1f ms)\n", entries.size(),
                      service->slow_log()->threshold_ms());
        }
      } else if (op == ".views") {
        if (arg == "on" || arg == "off") {
          enable_views = (arg == "on");
          std::printf("views = %s\n", enable_views ? "on" : "off");
          if (service != nullptr &&
              service->options().enable_views != enable_views) {
            std::printf("note: run .service on again to apply the views "
                        "switch to the service front door\n");
          }
        } else if (arg.empty() || arg == "stats") {
          if (!service) {
            std::printf("views = %s (armed for .service on; the catalog "
                        "lives in the service front door)\n",
                        enable_views ? "on" : "off");
            continue;
          }
          ViewCatalogStats vs = service->views()->stats();
          std::printf(
              "views = %s: lookups=%llu hits=%llu misses=%llu offers=%llu "
              "admitted=%llu rejected=%llu stale_offers=%llu evictions=%llu "
              "invalidations=%llu carry_forwards=%llu refreshes=%llu "
              "promotions=%llu demotions=%llu bytes=%zu entries=%zu "
              "resident=%zu pinned=%zu\n",
              service->options().enable_views ? "on" : "off",
              static_cast<unsigned long long>(vs.lookups),
              static_cast<unsigned long long>(vs.hits),
              static_cast<unsigned long long>(vs.misses),
              static_cast<unsigned long long>(vs.offers),
              static_cast<unsigned long long>(vs.admitted),
              static_cast<unsigned long long>(vs.rejected),
              static_cast<unsigned long long>(vs.stale_offers),
              static_cast<unsigned long long>(vs.evictions),
              static_cast<unsigned long long>(vs.invalidations),
              static_cast<unsigned long long>(vs.carry_forwards),
              static_cast<unsigned long long>(vs.refreshes),
              static_cast<unsigned long long>(vs.promotions),
              static_cast<unsigned long long>(vs.demotions), vs.bytes,
              vs.entries, vs.resident, vs.pinned);
          for (const ViewInfo& info : service->views()->Entries()) {
            std::printf("  %s%s %s epoch=%llu rows=%zu bytes=%zu obs=%llu "
                        "hits=%llu terms=%zu cost=%.0f\n",
                        info.pinned ? "[pinned] " : "",
                        info.resident ? "[resident]" : "[ledger-only]",
                        info.signature.c_str(),
                        static_cast<unsigned long long>(info.epoch),
                        info.rows, info.bytes,
                        static_cast<unsigned long long>(info.observations),
                        static_cast<unsigned long long>(info.hits),
                        info.union_terms, info.est_cost);
          }
        } else {
          std::printf(".views [on|off|stats]\n");
        }
      } else if (op == ".service") {
        if (arg == "on") {
          ServiceOptions service_options;
          service_options.answer = options;
          service_options.enable_views = enable_views;
          service = std::make_unique<QueryService>(&graph, profile,
                                                   service_options);
          std::printf("service = on — plans cached per (canonical query, "
                      "epoch); strategy/threads are captured now, rerun "
                      ".service on after changing them (.explain/.sql are "
                      "bypassed while on)\n");
        } else if (arg == "off") {
          service.reset();
          std::printf("service = off\n");
        } else if (service) {
          QueryService::Stats s = service->stats();
          std::printf(
              "service = on: epoch=%llu cache{hits=%llu misses=%llu "
              "evictions=%llu entries=%llu bytes=%llu} admission{admitted="
              "%llu shed=%llu deadline_exceeded=%llu}\n",
              static_cast<unsigned long long>(s.epoch),
              static_cast<unsigned long long>(s.cache.hits),
              static_cast<unsigned long long>(s.cache.misses),
              static_cast<unsigned long long>(s.cache.evictions),
              static_cast<unsigned long long>(s.cache.entries),
              static_cast<unsigned long long>(s.cache.bytes),
              static_cast<unsigned long long>(s.admission.admitted),
              static_cast<unsigned long long>(s.admission.shed),
              static_cast<unsigned long long>(s.admission.deadline_exceeded));
        } else {
          std::printf("service = off (.service on routes queries through "
                      "the caching front door)\n");
        }
      } else if (op == ".calibrate") {
        std::printf("running calibration sweeps on %s...\n",
                    profile.name.c_str());
        CalibrationReport report = CalibrateProfile(profile);
        profile.cost = report.fitted;
        std::printf("fitted: c_db=%.1f c_t=%.3f c_j=%.3f c_m=%.3f c_l=%.3f "
                    "c_union_term=%.1f (cost units ~ microseconds)\n",
                    profile.cost.c_db, profile.cost.c_t, profile.cost.c_j,
                    profile.cost.c_m, profile.cost.c_l,
                    profile.cost.c_union_term);
      } else if (op == ".stats") {
        std::printf("triples=%zu subjects=%zu properties=%zu objects=%zu "
                    "classes=%zu constrained-properties=%zu saturated=%zu\n",
                    stats.total_triples(), stats.distinct_subjects(),
                    stats.distinct_properties(), stats.distinct_objects(),
                    graph.schema().AllClasses().size(),
                    graph.schema().AllProperties().size(), sat.store.size());
      } else {
        std::printf("unknown command %s (.help)\n", op.c_str());
      }
      continue;
    }

    pending += line;
    pending += '\n';
    // A query is complete when a line ends with '}' or a lone ';'.
    std::string trimmed = line;
    while (!trimmed.empty() && std::isspace(
               static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty() ||
        (trimmed.back() != '}' && trimmed != ";")) {
      continue;
    }
    std::string text = std::move(pending);
    pending.clear();
    if (text.find_first_not_of(" \t\n;") == std::string::npos) continue;

    // Queries may declare their own prefixes; the preamble only helps when
    // the text does not start with PREFIX.
    if (text.find("PREFIX") == std::string::npos &&
        text.find("prefix") == std::string::npos) {
      text = preamble + text;
    }
    if (trace) trace_session.Clear();  // One span tree per query.
    if (service) {
      // The front door parses, canonicalizes, caches and admits; the shell
      // only formats what comes back.
      Result<ServiceOutcome> served = service->AnswerText(text);
      if (trace) {
        std::printf("-- trace:\n%s",
                    trace_session.ToString(/*max_lines=*/200).c_str());
      }
      if (!served.ok()) {
        std::printf("error: %s\n", served.status().ToString().c_str());
        continue;
      }
      const ServiceOutcome& so = served.ValueOrDie();
      const size_t limit = 20;
      for (size_t i = 0; i < so.answers.num_rows() && i < limit; ++i) {
        std::printf("  ");
        for (size_t c = 0; c < so.answers.arity(); ++c) {
          std::printf("%s%s", c > 0 ? "  " : "",
                      graph.dict().term(so.answers.at(i, c)).Encoded().c_str());
        }
        if (so.answers.arity() == 0) std::printf("true");
        std::printf("\n");
      }
      if (so.answers.num_rows() > limit) {
        std::printf("  ... (%zu rows total)\n", so.answers.num_rows());
      }
      std::printf("%zu answer(s) in %.2f ms [service: cache %s, epoch %llu, "
                  "%zu union terms, %zu component(s)]\n",
                  so.answers.num_rows(), so.total_ms,
                  so.cache_hit ? "hit" : "miss",
                  static_cast<unsigned long long>(so.epoch), so.union_terms,
                  so.num_components);
      continue;
    }
    Result<Query> query = [&] {
      TraceSpan span("answer.parse");
      return ParseQuery(text, &graph.dict());
    }();
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      continue;
    }
    Result<AnswerOutcome> outcome = answerer.Answer(query.ValueOrDie(),
                                                    options);
    if (trace) {
      std::printf("-- trace:\n%s",
                  trace_session.ToString(/*max_lines=*/200).c_str());
    }
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      continue;
    }
    const AnswerOutcome& o = outcome.ValueOrDie();
    if (o.jucq.has_value()) {
      if (explain) {
        if (o.plan.has_value()) {
          // The exact plan that was executed: under `analyze` its nodes
          // carry the actual row counts the run just recorded.
          ExplainOptions explain_opts;
          explain_opts.analyze = explain_analyze;
          std::printf("%s", ExplainPlan(*o.plan, *o.jucq_vars, graph.dict(),
                                        explain_opts)
                                .c_str());
        } else {
          std::printf("%s", ExplainJucqPlan(*o.jucq, *o.jucq_vars,
                                            graph.dict(), estimator, profile)
                                .c_str());
        }
      }
      if (emit_sql) {
        std::printf("-- SQL deployment over Triples(s,p,o)/Dict(id,value):\n"
                    "%s;\n",
                    ToSql(*o.jucq, *o.jucq_vars, SqlOptions{}).c_str());
      }
    }
    PrintAnswers(o.answers, query.ValueOrDie(), graph.dict());
    std::printf("%zu answer(s) in %.2f ms [%s: %zu union terms, "
                "%zu component(s)%s%s]\n",
                o.answers.num_rows(), o.total_ms(),
                std::string(StrategyName(options.strategy)).c_str(),
                o.union_terms, o.num_components,
                o.pruned_union_terms > 0 ? ", pruned" : "",
                o.minimized_atoms > 0 ? ", minimized" : "");
  }
  return 0;
}
